"""Tests for Algorithm 4 — group hashing's crash recovery."""

import pytest

from tests.conftest import random_items, small_region

from repro import GroupHashTable, recover_group_table
from repro.nvm import SimulatedPowerFailure, persist_all_schedule
from repro.nvm.crash import FunctionSchedule


def build(n_cells=512, group_size=32, seed=1):
    region = small_region()
    return region, GroupHashTable(region, n_cells, group_size=group_size, seed=seed)


def crash_during(region, table, op, *args, at_event=1, schedule=None):
    """Arm a crash, run op, materialise the failure, reattach."""
    region.arm_crash(at_event)
    with pytest.raises(SimulatedPowerFailure):
        op(*args)
    report = region.crash(schedule or persist_all_schedule())
    table.reattach()
    return report


def test_recovery_returns_count():
    region, table = build()
    items = random_items(60, seed=2)
    for k, v in items:
        table.insert(k, v)
    region.crash()
    table.reattach()
    assert recover_group_table(table) == 60
    assert table.count == 60


def test_fig1_case1_crash_before_bitmap_commit():
    """Figure 1 case 1: kv written (and persisted), crash before the
    bitmap flips → recovery clears the orphan kv; item simply lost."""
    region, table = build()
    pre = random_items(20, seed=3)
    for k, v in pre:
        table.insert(k, v)
    victim_key, victim_value = b"\xAB" * 8, b"\xCD" * 8
    # events in insert: write kv(1), flush(2), fence(3), write bitmap(4)...
    # crash at event 4 = after kv persisted, before bitmap write
    crash_during(region, table, table.insert, victim_key, victim_value, at_event=4)
    table.recover()
    assert table.query(victim_key) is None
    assert table.count == 20
    assert table.check_count()
    for k, v in pre:
        assert table.query(k) == v
    # no cell anywhere contains the orphan payload
    for k, v in table.items():
        assert k != victim_key


def test_fig1_case3_torn_value_write():
    """Figure 1 case 3: the kv write itself tears (one 8-byte word
    persists, the other does not) → recovery resets the partial cell."""
    region, table = build()
    victim_key = b"\xAA" * 8
    # crash ON the kv flush: the kv write happened (event 1), crash at
    # event 2 (the flush), so the line is dirty and the schedule tears it
    tear = FunctionSchedule(lambda line, offs: offs[:1])  # persist only 1 word
    crash_during(
        region, table, table.insert, victim_key, b"\xBB" * 8, at_event=2, schedule=tear
    )
    table.recover()
    assert table.query(victim_key) is None
    assert table.check_count()
    # every unoccupied cell is fully zeroed after recovery
    for addr in table._iter_cell_addrs():
        if not region.peek_persistent(addr, 1)[0] & 1:
            assert region.peek_persistent(addr + 8, 16) == bytes(16)


def test_fig1_case2_count_mismatch_repaired():
    """Figure 1 case 2: bitmap committed but count not yet incremented →
    recovery recounts by scanning (the item IS present)."""
    region, table = build()
    pre = random_items(10, seed=4)
    for k, v in pre:
        table.insert(k, v)
    key, value = b"\x11" * 8, b"\x22" * 8
    # events: kv write(1) flush(2) fence(3) bitmap write(4) flush(5)
    # fence(6) count write(7)... crash at event 7: bitmap persisted,
    # count not updated
    crash_during(region, table, table.insert, key, value, at_event=7)
    assert table.persisted_count == 10  # stale
    table.recover()
    assert table.query(key) == value  # committed by the bitmap flip
    assert table.count == 11
    assert table.check_count()


def test_delete_crash_after_bitmap_clear():
    """Algorithm 3 ordering: bitmap cleared first. A crash between the
    clear and the kv wipe leaves garbage that recovery resets; the
    delete is effectively committed."""
    region, table = build()
    key = b"\x33" * 8
    table.insert(key, b"\x44" * 8)
    count_before = table.count
    # delete events: bitmap write(1) flush(2) fence(3) kv clear(4)...
    crash_during(region, table, table.delete, key, at_event=4)
    table.recover()
    assert table.query(key) is None
    assert table.count == count_before - 1
    assert table.check_count()


def test_delete_crash_before_bitmap_clear_keeps_item():
    region, table = build()
    key = b"\x55" * 8
    table.insert(key, b"\x66" * 8)
    # crash at event 1 = before the bitmap write executes
    crash_during(region, table, table.delete, key, at_event=1)
    table.recover()
    assert table.query(key) == b"\x66" * 8
    assert table.count == 1


def test_recovery_idempotent():
    region, table = build()
    for k, v in random_items(30, seed=5):
        table.insert(k, v)
    crash_during(region, table, table.insert, b"\x77" * 8, b"\x88" * 8, at_event=2)
    table.recover()
    state1 = sorted(table.items())
    count1 = table.count
    table.recover()
    assert sorted(table.items()) == state1
    assert table.count == count1


def test_recovery_cost_scales_with_table_size():
    """Table 3's shape: the recovery scan is linear in table cells."""
    times = []
    for n_cells in (256, 512, 1024):
        region, table = build(n_cells=n_cells, group_size=32)
        region.crash()
        table.reattach()
        before = region.stats.sim_time_ns
        table.recover()
        times.append(region.stats.sim_time_ns - before)
    assert times[1] > times[0]
    assert times[2] > times[1]
    # roughly linear: doubling cells ~doubles time (loose bounds)
    assert 1.5 < times[2] / times[1] < 2.8


def test_recovery_after_clean_crash_touches_nothing():
    """On a cleanly persisted table, recovery must not write any cell
    (only the count field)."""
    region, table = build()
    for k, v in random_items(40, seed=6):
        table.insert(k, v)
    region.crash()
    table.reattach()
    writes_before = region.stats.writes
    table.recover()
    # only the count rewrite
    assert region.stats.writes - writes_before <= 1
