"""Tests for the growth experiment (GrowthSpec / run_growth_workload /
experiments/growth) and the split-in-progress crash-matrix coverage.

The acceptance claims pinned here:

- the measured window crosses at least three segment splits, and the
  during-split p99 stays strictly below the legacy whole-table rebuild
  pause for the same op stream;
- results are deterministic (and therefore byte-identical across
  ``--jobs``, which hash the same spec to the same cached cell);
- the crash matrix's grow cell lands crash points mid-split and the CI
  gate refuses a matrix without one.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench.config import SCALES
from repro.bench.engine import Engine, execute_spec
from repro.bench.experiments import growth as growth_exp
from repro.bench.experiments.crashmatrix import (
    CrashMatrixSpec,
    campaign_specs,
    run_crash_matrix_spec,
)
from repro.bench.runner import GrowthSpec, run_growth_workload
from repro.bench.workload import GROWTH_MIX, PRESETS

TINY = SCALES["tiny"]


@pytest.fixture(scope="module")
def tiny_cell():
    return run_growth_workload(GrowthSpec.from_scale(TINY))


def test_growth_mix_is_insert_heavy_and_not_a_preset():
    assert GROWTH_MIX.insert > 0.5
    assert GROWTH_MIX not in PRESETS.values()


def test_spec_round_trips_and_scales():
    spec = GrowthSpec.from_scale(TINY, seed=7)
    assert spec.n_ops == TINY.measure_ops
    assert spec.initial_cells >= 256
    assert GrowthSpec.from_dict(spec.to_dict()) == spec


def test_window_crosses_three_splits(tiny_cell):
    inc = tiny_cell["incremental"]
    assert inc["splits"] >= 3
    assert inc["final_capacity"] > tiny_cell["initial_capacity"]
    # several splits can land inside one op, so ops <= splits
    assert 1 <= len(inc["split_ops"]) <= inc["splits"]
    assert inc["during_split"]["count"] == len(inc["split_ops"])


def test_split_p99_strictly_below_rebuild_pause(tiny_cell):
    assert tiny_cell["legacy"]["expansions"] >= 1
    assert tiny_cell["split_p99_ns"] < tiny_cell["rebuild_pause_ns"]
    assert tiny_cell["split_p99_below_rebuild_pause"]


def test_growth_run_is_deterministic(tiny_cell):
    again = run_growth_workload(GrowthSpec.from_scale(TINY))
    assert json.dumps(tiny_cell, sort_keys=True) == json.dumps(
        again, sort_keys=True
    )


def test_steady_tail_is_unaffected_by_growth_mode(tiny_cell):
    """Away from splits/rebuilds both paths run the same per-op
    commits, so their steady medians agree closely."""
    inc = tiny_cell["incremental"]["steady"]
    leg = tiny_cell["legacy"]["steady"]
    assert inc["p50"] == pytest.approx(leg["p50"], rel=0.25)


def test_experiment_reports_and_flags_ok():
    result = growth_exp.run(TINY, seed=42, engine=Engine(jobs=1, cache=False))
    assert result.name == "growth"
    assert result.data["ok"]
    assert len(result.data["cells"]) == 2
    assert "during-split" in result.text
    for cell in result.data["cells"]:
        assert cell["split_p99_below_rebuild_pause"]


def test_growth_spec_executes_through_the_engine():
    spec = GrowthSpec.from_scale(TINY)
    assert execute_spec(spec) == run_growth_workload(spec)


# ----------------------------------------------------------------------
# split-in-progress crash points


def test_crashmatrix_grid_includes_a_grow_cell():
    specs = campaign_specs(TINY, seed=42)
    grow = [s for s in specs if s.grow]
    assert len(grow) == 1
    assert grow[0].label.endswith("-dir")


def test_grow_cell_lands_crash_points_mid_split():
    spec = CrashMatrixSpec(
        total_cells=32,
        n_ops=24,
        prefill=0.5,
        subset_budget=2,
        grow=True,
        segment_cells=8,
        seed=42,
    )
    cell = run_crash_matrix_spec(spec)
    assert cell["splits"] >= 3
    assert cell["split_points"] >= 1
    assert cell["violations"] == []


def _run_gate(tmp_path: Path, cells: list[dict], **totals) -> tuple[int, str]:
    report = {
        "crashmatrix": {
            "cells": cells,
            "total_points": totals.get("points", 500),
            "total_replays": totals.get("replays", 800),
            "total_violations": 0,
        }
    }
    path = tmp_path / "report.json"
    path.write_text(json.dumps(report))
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve().parent.parent / "scripts"
                / "ci_crashmatrix_gate.py"),
            str(path),
            "--min-points", "100",
            "--min-schemes", "1",
        ],
        capture_output=True,
        text=True,
    )
    return proc.returncode, proc.stdout


def _cell(scheme="group", splits=0, split_points=0, batch=0, clients=0,
          concurrent_points=0):
    return {
        "spec": {
            "scheme": scheme, "backend": "raw", "n_shards": 0,
            "batch": batch, "clients": clients,
        },
        "points": 250,
        "replays": 400,
        "splits": splits,
        "split_points": split_points,
        "concurrent_points": concurrent_points,
        "violations": [],
        "min_failing_prefix": None,
    }


def test_gate_requires_a_split_in_progress_cell(tmp_path):
    code, out = _run_gate(
        tmp_path, [_cell(batch=4, clients=3, concurrent_points=40)]
    )
    assert code == 1
    assert "no split-in-progress cell" in out


def test_gate_requires_batch_coverage(tmp_path):
    code, out = _run_gate(
        tmp_path,
        [
            _cell(clients=3, concurrent_points=40),
            _cell(splits=3, split_points=12),
        ],
    )
    assert code == 1
    assert "batched-insert" in out


def test_gate_requires_concurrent_coverage(tmp_path):
    code, out = _run_gate(
        tmp_path, [_cell(batch=4), _cell(splits=3, split_points=12)]
    )
    assert code == 1
    assert "in-flight" in out


def test_gate_passes_with_split_coverage(tmp_path):
    code, out = _run_gate(
        tmp_path,
        [
            _cell(batch=4, clients=3, concurrent_points=40),
            _cell(splits=3, split_points=12),
        ],
    )
    assert code == 0
    assert "12 mid-split points" in out
    assert "250 batch points" in out
    assert "40 concurrent points" in out
