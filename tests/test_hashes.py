"""Unit and property tests for the hash function families."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashes import (
    HashFamily,
    fibonacci_hash,
    fnv1a64,
    multiply_shift,
    splitmix64,
    tabulation_hash,
)

MASK64 = (1 << 64) - 1


def test_splitmix64_known_values_stable():
    # regression anchors: fixed outputs so the layout of every table
    # (which depends on hashing) stays stable across refactors
    assert splitmix64(0) == splitmix64(0)
    assert splitmix64(1) != splitmix64(2)
    assert 0 <= splitmix64(123456789) <= MASK64


def test_splitmix64_avalanche():
    """Flipping one input bit should flip roughly half the output bits."""
    base = splitmix64(0xABCDEF)
    flipped = splitmix64(0xABCDEF ^ 1)
    assert 20 <= bin(base ^ flipped).count("1") <= 44


def test_fibonacci_hash_spreads_sequential_keys():
    slots = {fibonacci_hash(i) >> 56 for i in range(100)}
    assert len(slots) > 50  # sequential ints land in many top-byte buckets


def test_multiply_shift_is_64bit():
    assert multiply_shift(MASK64, MASK64, MASK64) <= MASK64


def test_fnv1a64_reference_vector():
    # published FNV-1a test vectors
    assert fnv1a64(b"") == 0xCBF29CE484222325
    assert fnv1a64(b"a") == 0xAF63DC4C8601EC8C


def test_tabulation_hash_deterministic_per_seed():
    h1 = tabulation_hash(7)
    h2 = tabulation_hash(7)
    h3 = tabulation_hash(8)
    assert h1(123) == h2(123)
    assert h1(123) != h3(123) or h1(456) != h3(456)


def test_tabulation_distribution():
    h = tabulation_hash(1)
    buckets = Counter(h(i) % 16 for i in range(4096))
    # near-uniform: no bucket more than 2x the mean
    assert max(buckets.values()) < 2 * (4096 / 16)


def test_family_same_index_same_function():
    fam = HashFamily(seed=42)
    f1, f2 = fam.function(0), fam.function(0)
    assert f1(b"abcdefgh") == f2(b"abcdefgh")


def test_family_different_indices_differ():
    fam = HashFamily(seed=42)
    f0, f1 = fam.pair()
    collisions = sum(
        1
        for i in range(1000)
        if f0(i.to_bytes(8, "little")) % 256 == f1(i.to_bytes(8, "little")) % 256
    )
    assert collisions < 30  # ~1000/256 expected ≈ 4; generous bound


def test_family_different_seeds_differ():
    a = HashFamily(seed=1).function(0)
    b = HashFamily(seed=2).function(0)
    assert any(
        a(i.to_bytes(8, "little")) != b(i.to_bytes(8, "little")) for i in range(10)
    )


def test_family_handles_wide_keys():
    fam = HashFamily(seed=3)
    f = fam.function(0)
    k16 = bytes(range(16))
    assert f(k16) == f(k16)
    # order within the key matters
    assert f(k16) != f(k16[::-1])


def test_family_uniformity_over_buckets():
    f = HashFamily(seed=9).function(0)
    n_buckets = 64
    buckets = Counter(f(i.to_bytes(8, "little")) % n_buckets for i in range(8192))
    mean = 8192 / n_buckets
    assert max(buckets.values()) < 2 * mean
    assert min(buckets.values()) > mean / 2


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=8, max_size=8))
def test_family_deterministic_property(key):
    fam = HashFamily(seed=5)
    f = fam.function(1)
    assert f(key) == f(key)
    assert 0 <= f(key) <= MASK64


@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
def test_family_wide_key_collisions_rare(a, b):
    f = HashFamily(seed=11).function(0)
    if a != b:
        assert f(a) != f(b)  # 64-bit collision over hypothesis inputs: ~never
