"""Cross-module integration tests: compositions a downstream user would
actually build."""

import pytest

from tests.conftest import random_items

from repro import (
    CacheConfig,
    GroupHashTable,
    LinearProbingTable,
    NVMRegion,
    PFHTTable,
    SimConfig,
    SimulatedPowerFailure,
    UndoLog,
    WearLevelledRegion,
    expand_group_table,
    random_schedule,
)
from repro.kv import KVStore
from repro.nvm.latency import PCM, STT_MRAM
from repro.traces import BagOfWordsTrace, FingerprintTrace


def test_multiple_tables_share_one_region():
    """A region is a device: several structures can live side by side
    without interfering (the bump allocator keeps them disjoint)."""
    region = NVMRegion(8 << 20)
    group = GroupHashTable(region, 1024, group_size=32)
    linear = LinearProbingTable(region, 1024)
    log = UndoLog(region, record_size=32, capacity=256)
    pfht = PFHTTable(region, 1024, log=log)

    items = random_items(300, seed=1)
    for k, v in items:
        assert group.insert(k, v)
        assert linear.insert(k, v[::-1])
        assert pfht.insert(k, v)
    for k, v in items:
        assert group.query(k) == v
        assert linear.query(k) == v[::-1]
        assert pfht.query(k) == v
    # allocations never overlap
    spans = sorted((a.addr, a.addr + a.size) for a in region.allocations)
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert end <= start


def test_crash_recovers_all_cohabiting_tables():
    region = NVMRegion(8 << 20)
    group = GroupHashTable(region, 512, group_size=32)
    log = UndoLog(region, record_size=32, capacity=256)
    linear = LinearProbingTable(region, 512, log=log)
    items = random_items(120, seed=2)
    for k, v in items:
        group.insert(k, v)
        linear.insert(k, v)
    region.crash(random_schedule(3))
    for table in (group, linear):
        table.reattach()
        table.recover()
        assert table.check_count()
        assert dict(table.items()) == dict(items)


def test_kv_store_on_wear_levelled_region():
    """The full stack: KV store → group-hashing index → slab → start-gap
    wear leveling → simulated NVM."""
    region = WearLevelledRegion(
        4 << 20,
        SimConfig(cache=CacheConfig(size_bytes=32 * 1024)),
        rotate_every=256,
    )
    store = KVStore(region, n_index_cells=512, group_size=32,
                    slab_bytes_per_class=16 * 1024)
    model = {}
    for i in range(120):
        key, value = f"obj{i}".encode(), bytes([i % 251]) * (10 + i % 90)
        store.put(key, value)
        model[key] = value
    assert region.mapper.start > 0 or region.mapper.gap < region.mapper.n
    for key, value in model.items():
        assert store.get(key) == value
    # crash the whole stack and bring it back
    region.crash(random_schedule(9))
    region.reload_registers()
    store.recover()
    assert dict(store.items()) == model
    assert store.slab.allocated_chunks() == len(model)


def test_group_hashing_on_every_technology():
    """Table 1 presets are drop-in: behaviour identical, cost differs."""
    times = {}
    for tech in (STT_MRAM, PCM):
        region = NVMRegion(2 << 20, SimConfig(latency=tech))
        table = GroupHashTable(region, 512, group_size=32)
        for k, v in random_items(200, seed=4):
            table.insert(k, v)
        assert table.count == 200
        times[tech.name] = region.stats.sim_time_ns
    assert times["pcm"] > times["stt-mram"]


def test_expand_preserves_kv_reachability():
    """Expansion + KV locators: after growing the index, every record
    must still resolve (locators are values, so re-insertion keeps
    them)."""
    region = NVMRegion(8 << 20)
    store = KVStore(region, n_index_cells=256, group_size=16,
                    slab_bytes_per_class=32 * 1024)
    model = {}
    for i in range(100):
        key, value = f"key{i}".encode(), f"value-{i}".encode()
        if store.put(key, value):
            model[key] = value
    store.index = expand_group_table(store.index)
    for key, value in model.items():
        assert store.get(key) == value


def test_wide_item_traces_drive_tables_end_to_end():
    """Fingerprint (32-byte) and BagOfWords items flow through build,
    fill, crash and recovery."""
    for trace in (FingerprintTrace(seed=1), BagOfWordsTrace(seed=1)):
        region = NVMRegion(8 << 20)
        table = GroupHashTable(region, 1024, trace.spec, group_size=32)
        items = trace.items(300)
        for k, v in items:
            assert table.insert(k, v)
        region.arm_crash(2)
        extra_key, extra_value = trace.items(301)[-1]
        with pytest.raises(SimulatedPowerFailure):
            table.insert(extra_key, extra_value)
        region.crash(random_schedule(11))
        table.reattach()
        table.recover()
        assert table.check_count()
        for k, v in items:
            assert table.query(k) == v


def test_json_export_cli(tmp_path):
    import json

    from repro.bench.__main__ import main

    out = tmp_path / "results.json"
    rc = main(["table3", "--scale", "tiny", "--json", str(out)])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["scale"] == "tiny"
    assert "table3" in payload
    first = next(iter(payload["table3"].values()))
    assert "recovery_ms" in first
