"""Tests for the slab allocator."""

import pytest

from repro import NVMRegion
from repro.kv.slab import SlabAllocator, SlabFullError


def make(min_chunk=32, max_chunk=512, bytes_per_class=4096):
    region = NVMRegion(1 << 20)
    return region, SlabAllocator(
        region,
        min_chunk=min_chunk,
        max_chunk=max_chunk,
        bytes_per_class=bytes_per_class,
    )


def test_class_for_rounds_up_to_power_of_two():
    _, slab = make()
    assert slab.class_for(1) == 32
    assert slab.class_for(32) == 32
    assert slab.class_for(33) == 64
    assert slab.class_for(512) == 512


def test_class_for_rejects_oversize():
    _, slab = make()
    with pytest.raises(SlabFullError):
        slab.class_for(513)
    with pytest.raises(ValueError):
        slab.class_for(0)


def test_alloc_returns_distinct_aligned_chunks():
    _, slab = make()
    addrs = [slab.alloc(100) for _ in range(5)]
    assert len(set(addrs)) == 5
    deltas = {b - a for a, b in zip(addrs, addrs[1:])}
    assert deltas == {128}  # 100 → class 128, bump allocation


def test_alloc_costs_no_nvm_traffic():
    region, slab = make()
    writes = region.stats.writes
    flushes = region.stats.flushes
    slab.alloc(64)
    slab.free(slab.alloc(64), 64)
    assert region.stats.writes == writes
    assert region.stats.flushes == flushes


def test_free_then_alloc_reuses():
    _, slab = make()
    a = slab.alloc(50)
    slab.free(a, 50)
    assert slab.alloc(50) == a


def test_free_validates_address():
    _, slab = make()
    slab.alloc(50)
    with pytest.raises(ValueError):
        slab.free(1, 50)  # not a chunk boundary of that class


def test_exhaustion():
    _, slab = make(bytes_per_class=256)  # class 256 → 1 chunk
    slab.alloc(200)
    with pytest.raises(SlabFullError):
        slab.alloc(200)


def test_classes_are_independent():
    _, slab = make(bytes_per_class=256)
    slab.alloc(200)  # class 256 full
    addr = slab.alloc(30)  # class 32 unaffected (addr 0 is valid)
    assert isinstance(addr, int) and addr >= 0


def test_rebuild_reconstructs_state():
    _, slab = make()
    keep = [(slab.alloc(100), 100) for _ in range(4)]
    leak = slab.alloc(100)  # allocated but never published
    survivors = keep[:2] + keep[3:]  # simulate one deleted
    slab.rebuild(survivors)
    assert slab.allocated_chunks() == 3
    # freed + leaked chunks are available again; live ones are not
    available = set()
    while True:
        try:
            available.add(slab.alloc(100))
        except SlabFullError:
            break
    live_addrs = {addr for addr, _ in survivors}
    assert keep[2][0] in available
    assert leak in available
    assert not live_addrs & available


def test_rebuild_empty():
    _, slab = make()
    for _ in range(3):
        slab.alloc(40)
    slab.rebuild([])
    assert slab.allocated_chunks() == 0


def test_utilization():
    _, slab = make(bytes_per_class=320)  # class 32 → 10 chunks
    for _ in range(5):
        slab.alloc(20)
    assert slab.utilization()[32] == pytest.approx(0.5)


def test_validation():
    region = NVMRegion(1 << 20)
    with pytest.raises(ValueError):
        SlabAllocator(region, min_chunk=48)
    with pytest.raises(ValueError):
        SlabAllocator(region, min_chunk=512, max_chunk=64)
