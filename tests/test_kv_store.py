"""Tests for the variable-size KV store built on group hashing."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import NVMRegion, SimulatedPowerFailure, random_schedule
from repro.kv import KVStore


def make(n_index_cells=1 << 10, **kw) -> tuple[NVMRegion, KVStore]:
    region = NVMRegion(8 << 20)
    return region, KVStore(region, n_index_cells=n_index_cells, group_size=32, **kw)


def test_put_get_roundtrip():
    _, store = make()
    assert store.put(b"user:42", b"Ada Lovelace")
    assert store.get(b"user:42") == b"Ada Lovelace"
    assert b"user:42" in store
    assert len(store) == 1


def test_get_missing():
    _, store = make()
    assert store.get(b"ghost") is None
    assert b"ghost" not in store


def test_variable_sizes():
    _, store = make()
    cases = {
        b"tiny": b"x",
        b"k" * 200: b"v" * 1000,
        b"empty-value": b"",
        b"binary": bytes(range(256)),
    }
    for k, v in cases.items():
        assert store.put(k, v)
    for k, v in cases.items():
        assert store.get(k) == v


def test_overwrite_returns_latest():
    _, store = make()
    store.put(b"key", b"v1")
    store.put(b"key", b"v2" * 100)  # different size class
    assert store.get(b"key") == b"v2" * 100
    assert len(store) == 1


def test_overwrite_frees_old_chunk():
    _, store = make()
    store.put(b"key", b"a" * 50)
    chunks_before = store.slab.allocated_chunks()
    store.put(b"key", b"b" * 50)
    assert store.slab.allocated_chunks() == chunks_before


def test_delete_frees_chunk():
    _, store = make()
    store.put(b"key", b"value")
    assert store.delete(b"key")
    assert store.get(b"key") is None
    assert store.slab.allocated_chunks() == 0
    assert not store.delete(b"key")


def test_items_inventory():
    _, store = make()
    model = {f"k{i}".encode(): (f"v{i}" * (i + 1)).encode() for i in range(30)}
    for k, v in model.items():
        store.put(k, v)
    assert dict(store.items()) == model


def test_validation():
    _, store = make()
    with pytest.raises(ValueError):
        store.put(b"", b"v")
    with pytest.raises(ValueError):
        store.put(b"k", b"v" * 10_000)


def test_failed_overwrite_restores_old_value(monkeypatch):
    """Regression: an overwrite whose index re-insert failed used to
    return False with the old mapping already deleted — the key
    vanished and the new chunk leaked."""
    _, store = make()
    assert store.put(b"key", b"old" * 10)
    chunks = store.slab.allocated_chunks()
    real_insert = store.index.insert
    armed = [True]

    def flaky_insert(digest, locator):
        if armed[0]:  # index rejects the new locator (e.g. full group)
            armed[0] = False
            return False
        return real_insert(digest, locator)

    monkeypatch.setattr(store.index, "insert", flaky_insert)
    assert not store.put(b"key", b"new" * 40)
    assert store.get(b"key") == b"old" * 10
    assert len(store) == 1
    assert store.slab.allocated_chunks() == chunks


def test_overwrite_split_error_restores_old_value(monkeypatch):
    """Regression: a growable index whose re-insert raised
    :class:`SplitError` mid-overwrite used to propagate the exception
    with the old mapping already deleted — the key vanished from the
    store and the new chunk leaked. The failure must instead roll back
    like a False insert: old value intact, chunks balanced, ``False``
    returned."""
    from repro.core import SplitError

    _, store = make(growable=True, segment_cells=64)
    assert store.put(b"key", b"old" * 10)
    chunks = store.slab.allocated_chunks()
    real_insert = store.index.insert
    armed = [True]

    def exploding_insert(digest, locator):
        if armed[0]:  # region exhausted mid-split
            armed[0] = False
            raise SplitError("region cannot hold a sibling segment")
        return real_insert(digest, locator)

    monkeypatch.setattr(store.index, "insert", exploding_insert)
    assert not store.put(b"key", b"new" * 40)
    assert store.get(b"key") == b"old" * 10
    assert len(store) == 1
    assert store.slab.allocated_chunks() == chunks
    # the store is not poisoned: the next put goes through unassisted
    assert store.put(b"key", b"newer" * 8)
    assert store.get(b"key") == b"newer" * 8


def test_put_many_split_error_confined_to_suffix(monkeypatch):
    """Regression: a :class:`SplitError` thrown by the index mid-batch
    used to escape ``put_many`` after some locators had published —
    callers got no results, and the unpublished records' chunks leaked.
    The batch must instead report exactly which items published and
    free the rest."""
    from repro.core import SplitError

    _, store = make(growable=True, segment_cells=64)
    items = [(f"batch:{i}".encode(), bytes([i]) * 20) for i in range(8)]
    real_put_many = store.index.put_many

    def failing_put_many(pairs):
        # publish the first three locators, then die mid-split
        real_put_many(pairs[:3])
        raise SplitError("region cannot hold a sibling segment")

    monkeypatch.setattr(store.index, "put_many", failing_put_many)
    results = store.put_many(items)
    assert results == [True] * 3 + [False] * 5
    for (key, value), ok in zip(items, results):
        assert store.get(key) == (value if ok else None)
    assert len(store) == 3
    assert store.slab.allocated_chunks() == 3
    # not poisoned: the suffix goes in fine once the index cooperates
    monkeypatch.setattr(store.index, "put_many", real_put_many)
    assert store.put_many(items[3:]) == [True] * 5
    assert dict(store.items()) == dict(items)


def test_oversized_key_rejected_up_front():
    """Regression: an over-bound key used to surface as a slab
    MemoryError (or silently squeeze into the value headroom) instead
    of a ValueError before any slab traffic."""
    _, store = make()
    with pytest.raises(ValueError, match="max_key"):
        store.put(b"k" * (store.max_key + 1), b"v")
    assert store.slab.allocated_chunks() == 0
    assert len(store) == 0


def test_max_key_boundary_roundtrip():
    _, store = make()
    key, value = b"K" * store.max_key, b"V" * store.max_value
    assert store.put(key, value)
    assert store.get(key) == value


def test_max_chunk_covers_key_and_value_bounds():
    """Regression: the largest slab class was sized from max_value
    alone, so a maximal-key + maximal-value record could not be stored
    at all."""
    region = NVMRegion(8 << 20)
    store = KVStore(
        region,
        n_index_cells=256,
        group_size=16,
        max_key=2048,
        max_value=2048,
        slab_bytes_per_class=64 * 1024,
    )
    key, value = b"K" * 2048, b"V" * 2048
    assert store.put(key, value)
    assert store.get(key) == value


def test_crash_before_publish_loses_only_inflight():
    region, store = make()
    model = {f"k{i}".encode(): f"v{i}".encode() for i in range(20)}
    for k, v in model.items():
        store.put(k, v)
    region.arm_crash(3)  # inside the record persist / index insert
    try:
        store.put(b"inflight", b"payload")
    except SimulatedPowerFailure:
        pass
    region.crash(random_schedule(5))
    store.recover()
    state = dict(store.items())
    assert state.get(b"inflight") in (None, b"payload")
    for k, v in model.items():
        assert state[k] == v


def test_recover_reclaims_leaked_chunks():
    region, store = make()
    store.put(b"stable", b"here")
    chunks = store.slab.allocated_chunks()
    region.arm_crash(3)
    try:
        store.put(b"leak", b"x" * 100)
    except SimulatedPowerFailure:
        pass
    region.crash()
    store.recover()
    if store.get(b"leak") is None:
        assert store.slab.allocated_chunks() == chunks
    assert store.get(b"stable") == b"here"


def test_crash_fuzz_many_points():
    """Crash a put at every early event offset; the store must always
    recover with committed data intact and the in-flight put atomic."""
    for at in range(1, 12):
        region, store = make()
        base = {f"b{i}".encode(): f"w{i}".encode() for i in range(10)}
        for k, v in base.items():
            store.put(k, v)
        region.arm_crash(at)
        completed = False
        try:
            store.put(b"new", b"n" * 40)
            completed = True
            region.disarm_crash()
        except SimulatedPowerFailure:
            region.crash(random_schedule(at))
            store.recover()
        state = dict(store.items())
        for k, v in base.items():
            assert state[k] == v, f"lost committed key at event {at}"
        assert state.get(b"new") in (None, b"n" * 40)
        if completed:
            assert state[b"new"] == b"n" * 40


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "get", "delete"]),
            st.binary(min_size=1, max_size=24),
            st.binary(max_size=200),
        ),
        max_size=40,
    )
)
def test_matches_dict_model(ops):
    _, store = make()
    model: dict[bytes, bytes] = {}
    for op, key, value in ops:
        if op == "put":
            if store.put(key, value):
                model[key] = value
        elif op == "get":
            assert store.get(key) == model.get(key)
        else:
            assert store.delete(key) == (key in model)
            model.pop(key, None)
    assert dict(store.items()) == model
    assert store.slab.allocated_chunks() == len(model)
