"""Unit tests for the latency model and Table 1 presets."""

import pytest

from repro.nvm.latency import (
    DRAM,
    PAPER_NVM,
    PCM,
    RERAM,
    STT_MRAM,
    TECHNOLOGY_PRESETS,
    LatencyModel,
)


def test_paper_default_flush_penalty_is_300ns():
    # Section 4.1: "we set the extra latency to 300ns by default"
    assert PAPER_NVM.nvm_write_extra_ns == 300.0


def test_dirty_flush_costs_more_than_clean():
    model = LatencyModel()
    assert model.flush_cost(dirty=True) > model.flush_cost(dirty=False)
    assert model.flush_cost(dirty=True) == pytest.approx(
        model.flush_base_ns + model.nvm_write_extra_ns
    )


def test_dram_has_no_flush_penalty():
    assert DRAM.nvm_write_extra_ns == 0.0
    assert DRAM.flush_cost(dirty=True) == DRAM.flush_base_ns


def test_table1_write_latency_ordering():
    # Table 1: STT-MRAM (10-30ns) < ReRAM (100ns) < PCM (150-1000ns) writes
    assert STT_MRAM.nvm_write_extra_ns < RERAM.nvm_write_extra_ns
    assert RERAM.nvm_write_extra_ns < PCM.nvm_write_extra_ns
    assert DRAM.nvm_write_extra_ns < STT_MRAM.nvm_write_extra_ns


def test_presets_registry_complete_and_consistent():
    assert set(TECHNOLOGY_PRESETS) == {"dram", "paper-nvm", "pcm", "reram", "stt-mram"}
    for name, model in TECHNOLOGY_PRESETS.items():
        assert model.name == name


def test_prefetch_hit_cheaper_than_line_fill():
    for model in TECHNOLOGY_PRESETS.values():
        assert model.prefetch_hit_ns < model.line_fill_ns


def test_model_is_frozen():
    with pytest.raises(AttributeError):
        PAPER_NVM.fence_ns = 0  # type: ignore[misc]
