"""Scheme-specific tests for level hashing (the OSDI'18 comparison)."""

import pytest

from tests.conftest import random_items, small_region

from repro import LevelHashTable


def build(n_cells=384, bucket_size=4, seed=1):
    region = small_region()
    return region, LevelHashTable(region, n_cells, bucket_size=bucket_size, seed=seed)


def test_two_one_level_geometry():
    _, table = build(n_cells=384, bucket_size=4)
    assert table.n_top == 2 * table.n_bottom
    assert table.capacity == (table.n_top + table.n_bottom) * 4
    # capacity tracks the requested cell budget
    assert 0.8 * 384 <= table.capacity <= 1.2 * 384


def test_bottom_bucket_shared_by_two_top_buckets():
    _, table = build()
    cands = dict.fromkeys(
        bucket for level, bucket in table._candidate_buckets(b"k" * 8) if level == "top"
    )
    bottoms = {
        bucket
        for level, bucket in table._candidate_buckets(b"k" * 8)
        if level == "bottom"
    }
    for top in cands:
        assert top // 2 in bottoms


def test_basic_crud():
    _, table = build()
    items = random_items(200, seed=1)
    accepted = [(k, v) for k, v in items if table.insert(k, v)]
    assert len(accepted) >= 190
    for k, v in accepted:
        assert table.query(k) == v
    for k, _ in accepted[::2]:
        assert table.delete(k)
    assert table.check_count()


def test_movement_bounded_to_one():
    """Level hashing's write bound: one insert relocates at most one
    item (≤ 7 writes: relocate 4 + install 3)."""
    region, table = build(n_cells=256)
    worst = 0
    for k, v in random_items(250, seed=2):
        before = region.stats.writes
        if table.insert(k, v):
            worst = max(worst, region.stats.writes - before)
    assert worst <= 7


def test_high_utilization():
    """The OSDI paper's selling point: >0.85 utilization from 4-slot
    buckets + two choices + bottom-level sharing."""
    _, table = build(n_cells=1024)
    for k, v in random_items(2000, seed=3):
        if not table.insert(k, v):
            break
    assert table.load_factor > 0.8


def test_crash_consistency_of_single_cell_ops():
    """Insert/delete commit via the shared token discipline: crash at
    any point recovers consistently (like group hashing)."""
    from repro.nvm import SimulatedPowerFailure, random_schedule

    for at in range(1, 10):
        region, table = build()
        base = {k: v for k, v in random_items(30, seed=4) if table.insert(k, v)}
        key, value = b"inflight", b"levelval"
        region.arm_crash(at)
        finished = False
        try:
            finished = table.insert(key, value)
            region.disarm_crash()
        except SimulatedPowerFailure:
            pass
        region.crash(random_schedule(at))
        table.reattach()
        table.recover()
        state = dict(table.items())
        for k, v in base.items():
            assert state.get(k) == v, f"event {at}"
        assert state.get(key) in (None, value)
        if finished:
            assert state[key] == value
        assert table.check_count()


def test_comparison_vs_group_hashing():
    """The headline comparison a user would run: level hashing trades
    slightly costlier probes (four scattered buckets) for much higher
    utilization than group hashing at equal cell budgets."""
    from repro import GroupHashTable

    region_l = small_region()
    level = LevelHashTable(region_l, 1024, seed=5)
    region_g = small_region()
    group = GroupHashTable(region_g, 1024, group_size=64, seed=5)
    level_n = group_n = 0
    for k, v in random_items(2000, seed=6):
        if level.insert(k, v):
            level_n += 1
        if group.insert(k, v):
            group_n += 1
    assert level_n / level.capacity > group_n / group.capacity


def test_validation():
    region = small_region()
    with pytest.raises(ValueError):
        LevelHashTable(region, 384, bucket_size=0)
