"""Scheme-specific tests for linear probing (probe order, backward-shift
deletion, cluster behaviour)."""


from tests.conftest import random_items, small_region

from repro import ItemSpec, LinearProbingTable


def build(n_cells=64, seed=1):
    region = small_region()
    return region, LinearProbingTable(region, n_cells, seed=seed)


def slot_of(table, key):
    return table._slot(key)


def key_for_slot(table, slot, avoid=()):
    """Find a key hashing to ``slot`` (brute force over small tables)."""
    i = 0
    while True:
        key = i.to_bytes(8, "little")
        if key not in avoid and slot_of(table, key) == slot:
            return key
        i += 1


def test_collision_goes_to_next_cell():
    region, table = build()
    k1 = key_for_slot(table, 10)
    k2 = key_for_slot(table, 10, avoid={k1})
    table.insert(k1, b"v" * 8)
    table.insert(k2, b"w" * 8)
    codec = table.codec
    assert codec.read_key(region, table._addr(10)) == k1
    assert codec.read_key(region, table._addr(11)) == k2


def test_probe_wraps_around_table_end():
    region, table = build()
    last = table.n_cells - 1
    k1 = key_for_slot(table, last)
    k2 = key_for_slot(table, last, avoid={k1})
    table.insert(k1, b"v" * 8)
    table.insert(k2, b"w" * 8)
    assert table.codec.read_key(region, table._addr(0)) == k2
    assert table.query(k2) == b"w" * 8


def test_backward_shift_fills_hole():
    """Deleting the head of a cluster must pull displaced items back so
    later probes still find them (no tombstones)."""
    region, table = build()
    keys = [key_for_slot(table, 5)]
    for _ in range(3):
        keys.append(key_for_slot(table, 5, avoid=set(keys)))
    for i, k in enumerate(keys):
        table.insert(k, bytes([i]) * 8)
    # cluster occupies cells 5..8
    assert table.delete(keys[0])
    # survivors must all be findable
    for i, k in enumerate(keys[1:], start=1):
        assert table.query(k) == bytes([i]) * 8
    # the cluster compacted: cell 8 is now empty
    assert not table.codec.is_occupied(region, table._addr(8))


def test_backward_shift_respects_home_slots():
    """An item whose home slot is *after* the hole must not be moved
    (the (j - home) % n >= (j - hole) % n condition)."""
    region, table = build()
    k5 = key_for_slot(table, 5)
    k6 = key_for_slot(table, 6, avoid={k5})
    table.insert(k5, b"a" * 8)
    table.insert(k6, b"b" * 8)  # sits in its own home slot 6
    table.delete(k5)
    # k6 must NOT have been pulled into slot 5
    assert table.codec.read_key(region, table._addr(6)) == k6
    assert table.query(k6) == b"b" * 8


def test_backward_shift_chain_across_multiple_moves():
    region, table = build()
    ks = [key_for_slot(table, 3)]
    for _ in range(5):
        ks.append(key_for_slot(table, 3, avoid=set(ks)))
    for k in ks:
        table.insert(k, b"x" * 8)
    # delete middle of cluster repeatedly; invariant: all others findable
    table.delete(ks[2])
    table.delete(ks[4])
    for k in (ks[0], ks[1], ks[3], ks[5]):
        assert table.query(k) == b"x" * 8
    assert table.count == 4


def test_delete_costs_more_writes_than_insert_in_cluster():
    """The paper's 'complicated delete process': deleting from a cluster
    rewrites cells, so flush counts exceed a plain insert's."""
    region, table = build(n_cells=128)
    ks = [key_for_slot(table, 7)]
    for _ in range(7):
        ks.append(key_for_slot(table, 7, avoid=set(ks)))
    for k in ks:
        table.insert(k, b"x" * 8)
    flushes_before = region.stats.flushes
    table.delete(ks[0])  # head of an 8-cluster: 7 shifts
    delete_flushes = region.stats.flushes - flushes_before
    flushes_before = region.stats.flushes
    table.insert(key_for_slot(table, 90, avoid=set(ks)), b"y" * 8)
    insert_flushes = region.stats.flushes - flushes_before
    assert delete_flushes > insert_flushes


def test_query_stops_at_empty_cell():
    region, table = build()
    k = key_for_slot(table, 20)
    absent = key_for_slot(table, 20, avoid={k})
    table.insert(k, b"v" * 8)
    reads_before = region.stats.reads
    assert table.query(absent) is None
    # probes: cell 20 (mismatch), cell 21 (empty) → 2 probe reads
    assert region.stats.reads - reads_before <= 3


def test_fills_to_capacity():
    _, table = build(n_cells=32)
    items = random_items(32, seed=3)
    for k, v in items:
        assert table.insert(k, v)
    assert table.count == 32
    assert table.load_factor == 1.0
    # one more must fail, not loop forever
    assert not table.insert(b"overflow", b"v" * 8)


def test_delete_from_completely_full_table_terminates():
    """Regression: backward-shift deletion has no empty cell to stop at
    when the table is at load factor 1.0 — the walk must bound itself to
    one cycle instead of spinning forever, and every remaining item must
    stay findable."""
    _, table = build(n_cells=16)
    items = random_items(16, seed=9)
    for k, v in items:
        assert table.insert(k, v)
    assert table.load_factor == 1.0
    assert table.delete(items[0][0])  # must return, not hang
    assert table.count == 15
    for k, v in items[1:]:
        assert table.query(k) == v
    # and keep deleting all the way down
    for k, _ in items[1:]:
        assert table.delete(k)
    assert table.count == 0


def test_wide_items():
    region = small_region()
    table = LinearProbingTable(region, 64, ItemSpec(16, 16))
    items = random_items(30, seed=4, spec=ItemSpec(16, 16))
    for k, v in items:
        assert table.insert(k, v)
    for k, v in items:
        assert table.query(k) == v
