"""Unit tests for NVMRegion: data path, persistence semantics, allocator."""

import pytest

from repro.nvm import CacheConfig, NVMRegion, SimConfig
from repro.nvm.latency import PAPER_NVM
from repro.nvm.memory import SimulatedPowerFailure

CFG = SimConfig(cache=CacheConfig(size_bytes=4096, line_size=64, associativity=2))


def region(size=1 << 16) -> NVMRegion:
    return NVMRegion(size, CFG)


# ---------------------------------------------------------------- basics


def test_read_back_what_was_written():
    r = region()
    r.write(100, b"hello world!")
    assert r.read(100, 12) == b"hello world!"


def test_u64_roundtrip():
    r = region()
    r.write_u64(64, 0xDEADBEEFCAFEF00D)
    assert r.read_u64(64) == 0xDEADBEEFCAFEF00D


def test_out_of_range_access_rejected():
    r = region(1024)
    with pytest.raises(IndexError):
        r.read(1020, 8)
    with pytest.raises(IndexError):
        r.write(1024, b"x")
    with pytest.raises(IndexError):
        r.read(-1, 4)


def test_zero_size_region_rejected():
    with pytest.raises(ValueError):
        NVMRegion(0)


# ----------------------------------------------------------- persistence


def test_write_is_not_persistent_until_flushed():
    r = region()
    r.write(128, b"volatile")
    assert r.peek_volatile(128, 8) == b"volatile"
    assert r.peek_persistent(128, 8) == bytes(8)


def test_clflush_persists_dirty_line():
    r = region()
    r.write(128, b"durable!")
    r.clflush(128)
    assert r.peek_persistent(128, 8) == b"durable!"


def test_persist_covers_multi_line_ranges():
    r = region()
    data = bytes(range(200 % 256)) * 1
    payload = bytes(i % 256 for i in range(200))
    r.write(60, payload)  # spans 5 lines starting mid-line
    r.persist(60, 200)
    assert r.peek_persistent(60, 200) == payload


def test_flush_clean_line_costs_base_only():
    r = region()
    r.read(0, 8)  # line resident, clean
    t0 = r.stats.sim_time_ns
    r.clflush(0)
    assert r.stats.sim_time_ns - t0 == pytest.approx(PAPER_NVM.flush_base_ns)


def test_flush_dirty_line_costs_write_penalty():
    r = region()
    r.write(0, b"x")
    t0 = r.stats.sim_time_ns
    r.clflush(0)
    assert r.stats.sim_time_ns - t0 == pytest.approx(
        PAPER_NVM.flush_base_ns + PAPER_NVM.nvm_write_extra_ns
    )


def test_clflush_invalidates_next_read_misses():
    r = region()
    r.write(0, b"x")
    r.clflush(0)
    misses_before = r.stats.cache_misses
    r.read(0, 1)
    assert r.stats.cache_misses == misses_before + 1


def test_clwb_mode_keeps_line_resident():
    cfg = SimConfig(
        cache=CacheConfig(size_bytes=4096, line_size=64, associativity=2),
        flush_invalidates=False,
    )
    r = NVMRegion(1 << 16, cfg)
    r.write(0, b"x")
    r.clflush(0)
    assert r.peek_persistent(0, 1) == b"x"
    misses_before = r.stats.cache_misses
    r.read(0, 1)  # still cached: hit
    assert r.stats.cache_misses == misses_before


def test_eviction_writes_back_dirty_line():
    # associativity 2, 32 sets (4096/64/2): lines 0, 32, 64 share set 0
    r = region()
    r.write(0, b"evictme!")
    r.read(32 * 64, 1)
    r.read(64 * 64, 1)  # evicts line 0 (LRU), which is dirty
    assert r.peek_persistent(0, 8) == b"evictme!"
    assert r.stats.writebacks >= 1


def test_mfence_counts_and_charges():
    r = region()
    fences = r.stats.fences
    t0 = r.stats.sim_time_ns
    r.mfence()
    assert r.stats.fences == fences + 1
    assert r.stats.sim_time_ns - t0 == pytest.approx(PAPER_NVM.fence_ns)


def test_unpersisted_ranges_tracks_dirty_data():
    r = region(1024)
    assert r.unpersisted_ranges() == []
    r.write(64, b"a" * 16)
    ranges = r.unpersisted_ranges()
    assert ranges == [(64, 16)]
    r.persist(64, 16)
    assert r.unpersisted_ranges() == []


# ---------------------------------------------------------- atomic write


def test_atomic_write_requires_alignment():
    r = region()
    with pytest.raises(ValueError):
        r.write_atomic_u64(12, 1)
    r.write_atomic_u64(16, 7)
    assert r.read_u64(16) == 7


# ------------------------------------------------------------- allocator


def test_alloc_respects_alignment():
    r = region()
    a = r.alloc(10, align=64)
    b = r.alloc(10, align=64)
    assert a % 64 == 0 and b % 64 == 0
    assert b >= a + 10


def test_alloc_exhaustion_raises():
    r = region(256)
    r.alloc(200)
    with pytest.raises(MemoryError):
        r.alloc(100)


def test_alloc_labels_recorded():
    r = region()
    r.alloc(8, label="meta")
    assert r.allocations[-1].label == "meta"
    assert r.bytes_allocated >= 8


def test_alloc_rejects_bad_alignment():
    r = region()
    with pytest.raises(ValueError):
        r.alloc(8, align=12)


# --------------------------------------------------------- crash arming


def test_armed_crash_fires_on_write():
    r = region()
    r.arm_crash(2)
    r.write(0, b"a")  # event 1
    with pytest.raises(SimulatedPowerFailure):
        r.write(8, b"b")  # event 2: boom
    # the failed write never happened
    assert r.peek_volatile(8, 1) == b"\0"


def test_disarm_cancels():
    r = region()
    r.arm_crash(1)
    r.disarm_crash()
    r.write(0, b"a")  # no failure


def test_crash_clears_armed_state():
    r = region()
    r.arm_crash(100)
    r.crash()
    for _ in range(200):
        r.write(0, b"a")  # never fires


def test_arm_crash_rejects_nonpositive():
    r = region()
    with pytest.raises(ValueError):
        r.arm_crash(0)


def test_stats_byte_accounting():
    r = region()
    r.write(0, b"abcdef")
    r.read(0, 4)
    assert r.stats.bytes_written == 6
    assert r.stats.bytes_read == 4
    assert r.stats.writes == 1
    assert r.stats.reads == 1
