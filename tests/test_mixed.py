"""Tests for the mixed-workload (YCSB-style) driver.

Covers the tentpole guarantees: op-stream determinism per seed, preset
ratios honoured within tolerance, live-set consistency of generated
streams, exact percentile reconciliation (Σ per-op simulated-ns deltas
equals the phase ``MemStats`` delta, to the bit), LatencyRecorder
exactness and histogram fallback, spec/result JSON round-trips, and
engine integration (cache round-trip plus byte-identity across
``--jobs``).
"""

import json
from collections import Counter

import pytest

from repro.bench.cache import ResultCache
from repro.bench.engine import Engine
from repro.bench.experiments.mixed import MIXED_SCHEMES
from repro.bench.runner import MixedResult, MixedSpec, run_mixed_workload
from repro.bench.workload import (
    OP_KINDS,
    PRESETS,
    LatencyRecorder,
    OpMix,
    ZipfianRanks,
    generate_ops,
)

TINY = dict(total_cells=1 << 10, group_size=32, n_ops=120)


def tiny_spec(scheme="group", preset="ycsb-a", **kw) -> MixedSpec:
    fields = {**TINY, "load_factor": 0.5, **kw}
    return MixedSpec(scheme=scheme, preset=preset, **fields)


# ----------------------------------------------------------------------
# op-stream generation


def test_generate_ops_deterministic_per_seed():
    mix = PRESETS["ycsb-a"]
    a = generate_ops(mix, 500, 200, seed=7)
    b = generate_ops(mix, 500, 200, seed=7)
    c = generate_ops(mix, 500, 200, seed=8)
    assert a == b
    assert a != c


@pytest.mark.parametrize("preset", sorted(PRESETS))
def test_preset_ratios_within_tolerance(preset):
    mix = PRESETS[preset]
    ops = generate_ops(mix, 4000, 1000, seed=11)
    counts = Counter(op.kind for op in ops)
    for kind, ratio in zip(OP_KINDS, mix.ratios):
        assert abs(counts[kind] / len(ops) - ratio) < 0.03, (
            f"{preset}: {kind} ratio off ({counts[kind] / len(ops):.3f} "
            f"vs {ratio:.3f})"
        )


def test_ycsb_c_is_read_only():
    ops = generate_ops(PRESETS["ycsb-c"], 1000, 100, seed=3)
    assert {op.kind for op in ops} == {"query"}


def test_stream_respects_liveness():
    """Every query/update/delete targets a key that is live at that
    point; inserts mint fresh sequential ids."""
    mix = OpMix(insert=0.3, query=0.2, update=0.2, delete=0.3)
    n_resident = 50
    ops = generate_ops(mix, 2000, n_resident, seed=5)
    live = set(range(n_resident))
    next_id = n_resident
    for op in ops:
        if op.kind == "insert":
            assert op.key_id == next_id
            live.add(next_id)
            next_id += 1
        else:
            assert op.key_id in live, f"{op.kind} on a dead key"
            if op.kind == "delete":
                live.remove(op.key_id)


def test_zipfian_skews_to_oldest_keys():
    mix = OpMix(query=1.0, key_dist="zipfian")
    ops = generate_ops(mix, 5000, 1000, seed=13)
    hot = sum(1 for op in ops if op.key_id < 10)
    assert hot / len(ops) > 0.25  # theta=0.99: top-10 ranks dominate


def test_latest_skews_to_newest_keys():
    mix = OpMix(query=1.0, key_dist="latest")
    n_resident = 1000
    ops = generate_ops(mix, 5000, n_resident, seed=13)
    counts = Counter(op.key_id for op in ops)
    # with no inserts the newest key is always id n_resident-1
    assert counts.most_common(1)[0][0] == n_resident - 1


def test_zipfian_ranks_incremental_zeta_matches_fresh():
    """Growing and shrinking the live set between draws must give the
    same ranks as a freshly constructed sampler."""
    draws = [i / 17 % 1.0 for i in range(1, 17)]
    sizes = [10, 11, 12, 11, 10, 9, 50, 49, 10, 10, 200, 199, 7, 8, 9, 10]
    warm = ZipfianRanks(0.99)
    for n, u in zip(sizes, draws):
        assert warm.rank(n, u) == ZipfianRanks(0.99).rank(n, u)


def test_zipfian_zeta_exact_after_oscillating_resizes():
    """10^5 random grow/shrink steps leave the maintained zeta *bit-
    identical* to a freshly summed one.

    The old incremental +=/-= maintenance drifted by ~1 ulp per long
    random walk (measured relative error up to ~9e-16 on this exact
    walk), so this asserts ``==``, not a tolerance — a tolerance would
    have passed pre-fix and the rank distribution would keep drifting
    under delete-heavy (YCSB-D-with-deletes) streams."""
    import random as _random

    rng = _random.Random(0)
    zipf = ZipfianRanks(0.99)
    n = 500
    for _ in range(100_000):
        n = max(2, n + rng.choice([-3, -1, 1, 2, 5, -4]))
        zipf._resize(n)
    fresh = 0.0
    for i in range(1, n + 1):
        fresh += i**-0.99
    assert zipf._zeta == fresh
    # and the public surface agrees with a cold sampler at that size
    for u in (0.01, 0.37, 0.93):
        assert zipf.rank(n, u) == ZipfianRanks(0.99).rank(n, u)


def test_zipfian_rank_bounds():
    zipf = ZipfianRanks(0.5)
    for n in (1, 2, 3, 100):
        for u in (0.0, 0.25, 0.5, 0.999999):
            assert 0 <= zipf.rank(n, u) < n
    with pytest.raises(ValueError):
        zipf.rank(0, 0.5)


def test_op_mix_validation():
    with pytest.raises(ValueError):
        OpMix(query=1.2, update=-0.2)  # negative ratio
    with pytest.raises(ValueError):
        OpMix(query=0.5, update=0.2)  # sums to 0.7
    with pytest.raises(ValueError):
        OpMix(query=1.0, key_dist="hotspot")
    with pytest.raises(ValueError):
        OpMix(query=1.0, zipf_theta=1.0)


# ----------------------------------------------------------------------
# latency recorder


def test_latency_recorder_exact_percentiles():
    rec = LatencyRecorder()
    values = [float(v) for v in range(1, 101)]
    # record out of order: index of the worst (100.0) is position 0
    values.sort(key=lambda v: -v)
    for i, v in enumerate(values):
        rec.record(v, i)
    summary = rec.summary()
    assert summary["count"] == 100
    assert summary["exact"] is True
    assert summary["p50"] == 50.0
    assert summary["p95"] == 95.0
    assert summary["p99"] == 99.0
    assert summary["max"] == 100.0
    assert summary["worst_op_index"] == 0


def test_latency_recorder_histogram_fallback():
    rec = LatencyRecorder(exact_cap=8)
    values = [float(v) for v in range(1, 21)]
    for i, v in enumerate(values):
        rec.record(v, i)
    assert rec.exact is False
    summary = rec.summary()
    assert summary["exact"] is False
    assert summary["count"] == 20
    # bucket upper bounds are conservative: never below the true value
    assert summary["p50"] >= 10.0
    assert summary["max"] == 20.0
    assert summary["worst_op_index"] == 19


# ----------------------------------------------------------------------
# spec / result round-trips


def test_mixed_spec_json_round_trip():
    mix = OpMix(insert=0.1, query=0.6, update=0.2, delete=0.1, key_dist="latest")
    spec = tiny_spec(mix=mix, preset="custom")
    wire = json.loads(json.dumps(spec.to_dict()))
    assert MixedSpec.from_dict(wire) == spec
    assert MixedSpec.from_dict(wire).resolved_mix() == mix
    plain = tiny_spec(preset="ycsb-b")
    assert MixedSpec.from_dict(json.loads(json.dumps(plain.to_dict()))) == plain
    assert plain.resolved_mix() == PRESETS["ycsb-b"]


def test_unknown_preset_rejected():
    with pytest.raises(ValueError, match="unknown preset"):
        tiny_spec(preset="ycsb-z").resolved_mix()


def test_mixed_result_json_round_trip():
    result = run_mixed_workload(tiny_spec())
    wire = json.loads(json.dumps(result.to_dict()))
    assert MixedResult.from_dict(wire).to_dict() == result.to_dict()


# ----------------------------------------------------------------------
# the driver


def test_per_op_deltas_reconcile_exactly():
    """Σ per-op sim-ns deltas telescopes to the phase MemStats delta —
    exactly, not approximately (all event costs are integer ns)."""
    result = run_mixed_workload(tiny_spec())
    assert result.extras["op_sim_ns"] == result.extras["phase_sim_ns"]
    assert result.total["count"] == TINY["n_ops"]
    assert result.phase.attempted == TINY["n_ops"]
    assert sum(s["count"] for s in result.per_kind.values()) == TINY["n_ops"]
    assert result.total["sum"] == pytest.approx(result.extras["op_sim_ns"])


@pytest.mark.parametrize("scheme", MIXED_SCHEMES)
def test_every_scheme_survives_update_heavy_mix(scheme):
    """ycsb-a routes updates through PersistentHashTable.update on every
    scheme; the driver's shadow model makes this self-verifying."""
    result = run_mixed_workload(tiny_spec(scheme=scheme, n_ops=80))
    assert result.per_kind["update"]["count"] > 0
    assert result.failed_ops == 0
    assert result.extras["op_sim_ns"] == result.extras["phase_sim_ns"]


def test_delete_heavy_custom_mix_round_trips():
    mix = OpMix(insert=0.3, query=0.2, update=0.2, delete=0.3)
    result = run_mixed_workload(tiny_spec(mix=mix, preset="churn"))
    assert result.failed_ops == 0
    assert set(result.per_kind) == set(OP_KINDS)
    assert result.extras["op_sim_ns"] == result.extras["phase_sim_ns"]


def test_with_trace_attributes_spans():
    result = run_mixed_workload(tiny_spec(with_trace=True))
    assert result.spans is not None
    assert result.trace_events
    assert result.extras["span_sim_ns"] == result.extras["phase_sim_ns"]


# ----------------------------------------------------------------------
# engine integration


def test_engine_cache_round_trip(tmp_path):
    spec = tiny_spec(scheme="linear-L")
    cold = Engine(jobs=1, cache=ResultCache(tmp_path))
    first = cold.run_one(spec)
    assert cold.executed == 1 and cold.cache_hits == 0
    warm = Engine(jobs=1, cache=ResultCache(tmp_path))
    second = warm.run_one(spec)
    assert warm.executed == 0 and warm.cache_hits == 1
    assert second.to_dict() == first.to_dict()


def test_engine_results_byte_identical_across_jobs():
    specs = [tiny_spec(scheme="group"), tiny_spec(scheme="pfht-L")]
    serial = Engine(jobs=1, cache=False).run(specs)
    parallel = Engine(jobs=2, cache=False).run(specs)
    assert json.dumps([r.to_dict() for r in serial], sort_keys=True) == json.dumps(
        [r.to_dict() for r in parallel], sort_keys=True
    )


def test_engine_warns_on_failed_ops():
    """Inserts at capacity surface as an engine warning, not silence."""
    # ycsb-d keeps inserting into a table filled to 0.95 of very few
    # cells — some inserts must fail
    spec = MixedSpec(
        scheme="group",
        preset="ycsb-d",
        load_factor=0.95,
        total_cells=1 << 8,
        group_size=16,
        n_ops=200,
    )
    engine = Engine(jobs=1, cache=False)
    result = engine.run_one(spec)
    if result.failed_ops:  # overwhelmingly likely at lf 0.95
        warnings = engine.take_warnings()
        assert warnings and "mixed ops failed" in warnings[0]
