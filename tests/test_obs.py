"""Observability subsystem tests (tracer + metrics + bench wiring).

The two hard guarantees:

1. **Disabled-mode invariance** — tables run with no tracer/metrics
   attached take the exact code path the pinned-event tests measure
   (those tests stay green unchanged elsewhere in the suite).
2. **Enabled-mode transparency** — even with both sinks attached, the
   simulated event stream and clock are byte-identical to a bare run:
   spans read stats snapshots and chained hooks, metrics count in plain
   Python; neither issues a region event.

Plus the attribution contract: per-op spans must reconcile exactly with
the phase MemStats deltas, and the whole observability payload must
survive the engine's result cache.
"""

from __future__ import annotations

import json

import pytest

from tests.conftest import make_table, random_items, small_region

from repro.bench.cache import ResultCache
from repro.bench.engine import Engine
from repro.bench.runner import RunSpec, run_workload
from repro.core.sharded import ShardedTable
from repro.nvm.stats import MemStats
from repro.obs import (
    N_BUCKETS,
    Counter,
    Gauge,
    Heat,
    Histogram,
    MetricsRegistry,
    Tracer,
    bucket_index,
    bucket_label,
    merge_metric_dicts,
)

# ----------------------------------------------------------------------
# metrics primitives


def test_bucket_index_edges():
    assert bucket_index(0) == 0
    assert bucket_index(-3) == 0
    assert bucket_index(1) == 1
    assert bucket_index(2) == 2
    assert bucket_index(3) == 2
    assert bucket_index(4) == 3
    assert bucket_index(7) == 3
    assert bucket_index(2.9) == 2  # floors to int first
    assert bucket_index(1 << 200) == N_BUCKETS - 1


def test_bucket_labels():
    assert bucket_label(0) == "0"
    assert bucket_label(1) == "1"
    assert bucket_label(2) == "2-3"
    assert bucket_label(3) == "4-7"


def test_counter_roundtrip_and_merge():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    other = Counter.from_dict(c.as_dict())
    other.merge(c)
    assert other.value == 10
    assert isinstance(c.as_dict(), int)


def test_gauge_merges_by_max():
    g = Gauge()
    g.set(3.0)
    h = Gauge.from_dict(g.as_dict())
    h.set(1.5)
    g.merge(h)
    assert g.value == 3.0


def test_histogram_record_stats_and_quantile():
    h = Histogram()
    for v in (1, 1, 2, 3, 8):
        h.record(v)
    assert h.count == 5
    assert h.total == 15
    assert h.min == 1 and h.max == 8
    assert h.mean == pytest.approx(3.0)
    assert h.quantile(0.0) in (0.0, 1.0)
    assert h.quantile(0.5) <= h.quantile(1.0)
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_histogram_merge_equals_combined_recording():
    a, b, combined = Histogram(), Histogram(), Histogram()
    for v in (1, 5, 9):
        a.record(v)
        combined.record(v)
    for v in (2, 70):
        b.record(v)
        combined.record(v)
    a.merge(b)
    assert a.as_dict() == combined.as_dict()


def test_histogram_dict_roundtrip_trims_trailing_zeros():
    h = Histogram()
    h.record(5)
    payload = h.as_dict()
    assert len(payload["buckets"]) == bucket_index(5) + 1
    assert Histogram.from_dict(payload).as_dict() == payload
    assert Histogram().as_dict()["buckets"] == []


def test_heat_top_and_roundtrip():
    heat = Heat()
    heat.touch(7, 3)
    heat.touch(2)
    heat.touch(7)
    assert heat.total == 5
    assert heat.top(1) == [(7, 4)]
    rebuilt = Heat.from_dict(heat.as_dict())
    rebuilt.merge(heat)
    assert rebuilt.cells == {7: 8, 2: 2}


def test_registry_get_or_create_and_kind_conflict():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    reg.histogram("probe").record(2)
    with pytest.raises(ValueError):
        reg.counter("probe")


def test_registry_merge_and_dict_roundtrip():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("ops").inc(2)
    a.histogram("probe").record(3)
    a.heat("groups").touch(1, 5)
    b.counter("ops").inc(3)
    b.gauge("fill").set(0.5)
    merged = a.merged(b)
    assert merged.counter("ops").value == 5
    # inputs untouched
    assert a.counter("ops").value == 2 and b.counter("ops").value == 3
    payload = merged.as_dict()
    assert MetricsRegistry.from_dict(payload).as_dict() == payload
    json.dumps(payload)  # JSON-safe end to end


def test_merge_metric_dicts_across_workers():
    def worker(n):
        reg = MetricsRegistry()
        reg.counter("ops").inc(n)
        reg.histogram("probe").record(n)
        return reg.as_dict()

    combined = merge_metric_dicts([worker(1), worker(2), worker(4)])
    assert combined["counters"]["ops"] == 7
    assert combined["histograms"]["probe"]["count"] == 3


def test_empty_histogram_quantiles_are_zero_but_still_validate():
    h = Histogram()
    assert h.quantile(0.0) == 0.0
    assert h.quantile(0.5) == 0.0
    assert h.quantile(1.0) == 0.0
    with pytest.raises(ValueError):
        h.quantile(-0.1)  # bad q is rejected even on an empty histogram
    with pytest.raises(ValueError):
        h.quantile(1.5)


def test_single_bucket_histogram_merge():
    a, b = Histogram(), Histogram()
    a.record(5)  # both land in bucket 4-7
    b.record(6)
    a.merge(b)
    assert a.count == 2 and a.min == 5 and a.max == 6
    assert a.quantile(1.0) == 7.0  # bucket upper bound
    # merging an empty histogram is the identity
    before = a.as_dict()
    a.merge(Histogram())
    assert a.as_dict() == before


def test_heat_merge_with_mismatched_kind_raises():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.heat("x").touch(1)
    b.counter("x").inc()
    with pytest.raises(ValueError, match="already registered"):
        a.merged(b)
    with pytest.raises(ValueError, match="already registered"):
        merge_metric_dicts([a.as_dict(), b.as_dict()])
    # Heat.from_dict requires integer-shaped keys
    with pytest.raises(ValueError):
        Heat.from_dict({"not-a-line": 1})


# ----------------------------------------------------------------------
# tracer primitives


def test_tracer_span_tree_and_deltas():
    region = small_region()
    addr = region.alloc(256, align=64)
    tracer = Tracer(region)
    with tracer.span("op"):
        region.write_u64(addr, 1)
        with tracer.span("persist"):
            region.persist(addr, 8)
    tracer.detach()
    summary = tracer.span_summary()
    assert set(summary) == {"op", "op/persist"}
    op, persist = summary["op"], summary["op/persist"]
    # inclusive: the child's flush+fence roll up into the parent
    assert op["ev_write"] == 1
    assert op["ev_flush"] == 1 and op["ev_fence"] == 1
    assert persist["ev_flush"] == 1 and persist["ev_write"] == 0
    assert op["sim_ns"] >= persist["sim_ns"] > 0
    assert op["self_ns"] == pytest.approx(op["sim_ns"] - persist["sim_ns"])
    assert tracer.depth == 0


def test_tracer_attribution_matches_memstats_delta():
    region = small_region()
    addr = region.alloc(1024, align=64)
    tracer = Tracer(region)
    before = region.stats.snapshot()
    with tracer.span("work"):
        for i in range(8):
            region.write_u64(addr + 8 * i, i)
        region.persist(addr, 64)
    delta = region.stats.delta(before)
    tracer.detach()
    work = tracer.span_summary()["work"]
    assert work["sim_ns"] == pytest.approx(delta.sim_time_ns)
    assert work["writes"] == delta.writes
    assert work["flushes"] == delta.flushes
    assert work["cache_misses"] == delta.cache_misses


def test_tracer_chains_and_restores_existing_hook():
    region = small_region()
    addr = region.alloc(64, align=64)
    seen = []
    region.event_hook = lambda kind, a, s: seen.append(kind)
    prior = region.event_hook
    tracer = Tracer(region)
    with tracer.span("s"):
        region.write_u64(addr, 1)
    # the pre-existing hook still fires while the tracer observes
    assert seen == ["write"]
    assert tracer.span_summary()["s"]["ev_write"] == 1
    tracer.detach()
    assert region.event_hook is prior
    region.write_u64(addr, 2)
    assert seen == ["write", "write"]


def test_tracer_untracked_events_and_unwind():
    region = small_region()
    addr = region.alloc(64, align=64)
    tracer = Tracer(region)
    region.write_u64(addr, 1)  # outside any span
    assert tracer.untracked_events["write"] == 1
    tracer.push("a")
    tracer.push("b")
    tracer.unwind()
    assert tracer.depth == 0
    assert set(tracer.span_summary()) == {"a", "a/b"}
    tracer.detach()


def test_tracer_event_cap_keeps_aggregating():
    tracer = Tracer(small_region(), max_events=2)
    for _ in range(5):
        with tracer.span("s"):
            pass
    tracer.detach()
    assert len(tracer.chrome_events()) == 2
    assert tracer.events_dropped == 3
    assert tracer.span_summary()["s"]["count"] == 5


def test_tracer_chrome_trace_shape():
    region = small_region()
    addr = region.alloc(64, align=64)
    tracer = Tracer(region)
    with tracer.span("op"):
        region.write_u64(addr, 1)
        region.persist(addr, 8)
    tracer.detach()
    trace = tracer.chrome_trace(pid=3)
    json.dumps(trace)
    (event,) = trace["traceEvents"]
    assert event["ph"] == "X" and event["pid"] == 3
    assert event["dur"] > 0
    assert event["args"]["writes"] == 1 and event["args"]["flushes"] == 1


def test_tracer_attaches_to_every_shard():
    st = ShardedTable(512, n_shards=2, seed=5)
    tracer = Tracer(st.backend)
    metrics = MetricsRegistry()
    st.instrument(tracer, metrics)
    with tracer.span("fill"):
        for k, v in random_items(40, seed=3):
            assert st.insert(k, v)
    tracer.detach()
    st.instrument(None, None)
    fill = tracer.span_summary()["fill"]
    # events from both shards landed in the one span
    assert fill["ev_write"] > 0 and fill["ev_fence"] > 0
    for i in range(st.n_shards):
        assert st.backend.shard(i).event_hook is None


# ----------------------------------------------------------------------
# instrumented tables


def test_group_table_metrics_and_occupancy():
    region = small_region()
    table = make_table("group", region)
    metrics = MetricsRegistry()
    table.instrument(metrics=metrics)
    items = random_items(300, seed=1)
    accepted = [(k, v) for k, v in items if table.insert(k, v)]
    for k, _ in accepted[:50]:
        assert table.query(k) is not None
    hist = metrics.histogram("group.insert_probe_cells")
    assert hist.count == len(accepted)
    assert metrics.counter("group.l1_inserts").value + metrics.counter(
        "group.overflow_inserts"
    ).value == len(accepted)
    assert metrics.heat("group.overflow_heat").total > 0
    table.observe_occupancy(metrics)
    l1 = metrics.gauge("group.l1_occupied").value
    l2 = metrics.gauge("group.l2_occupied").value
    assert l1 + l2 == table.count
    assert metrics.heat("group.occupancy_heat").total == l2
    table.instrument(None, None)
    assert table.metrics is None


def test_wal_counters_on_logged_scheme():
    region = small_region()
    table = make_table("linear", region, logged=True)
    metrics = MetricsRegistry()
    table.instrument(metrics=metrics)
    items = random_items(40, seed=2)
    for k, v in items:
        assert table.insert(k, v)
    for k, _ in items[:10]:
        assert table.delete(k)
    assert metrics.counter("wal.records").value >= 50
    assert metrics.counter("wal.commits").value == 50
    hist = metrics.histogram("linear.delete_shifts")
    assert hist.count == 10


def test_recovery_counters_and_span():
    region = small_region()
    table = make_table("group", region)
    for k, v in random_items(60, seed=4):
        table.insert(k, v)
    region.crash()
    table.reattach()
    tracer = Tracer(region)
    metrics = MetricsRegistry()
    table.instrument(tracer, metrics)
    table.recover()
    tracer.detach()
    assert metrics.counter("recovery.runs").value == 1
    assert metrics.counter("recovery.cells_scanned").value == table.capacity
    recover = tracer.span_summary()["recover"]
    assert recover["sim_ns"] > 0


# ----------------------------------------------------------------------
# enabled-mode transparency: instrumentation must not move one event


@pytest.mark.parametrize("scheme", ["group", "linear", "linear-L", "pfht", "path"])
def test_enabled_observability_is_simulation_invariant(scheme):
    spec = RunSpec(
        scheme=scheme,
        load_factor=0.4,
        total_cells=1 << 9,
        group_size=16,
        measure_ops=60,
        seed=13,
    )
    bare = run_workload(spec)
    observed = run_workload(spec.replace(with_trace=True, with_metrics=True))
    for phase in ("insert", "query", "delete"):
        assert bare.phase(phase).to_dict() == observed.phase(phase).to_dict()
    assert bare.fill_count == observed.fill_count
    assert observed.metrics is not None and observed.spans is not None


def test_disabled_specs_carry_no_observability_blocks():
    spec = RunSpec(
        scheme="group",
        load_factor=0.3,
        total_cells=1 << 9,
        group_size=16,
        measure_ops=30,
        seed=5,
    )
    result = run_workload(spec)
    assert result.metrics is None
    assert result.spans is None
    assert result.trace_events is None


# ----------------------------------------------------------------------
# runner reconciliation + serde + cache round-trip


def _traced_spec(**overrides) -> RunSpec:
    base = dict(
        scheme="group",
        load_factor=0.4,
        total_cells=1 << 9,
        group_size=16,
        measure_ops=60,
        seed=13,
        with_trace=True,
        with_metrics=True,
    )
    base.update(overrides)
    return RunSpec(**base)


@pytest.mark.parametrize("scheme", ["group", "linear-L", "pfht", "path"])
def test_span_sums_reconcile_with_phase_memstats(scheme):
    result = run_workload(_traced_spec(scheme=scheme))
    ops = result.insert.ops + result.query.ops + result.delete.ops
    span_ns = result.extras["span_sim_ns"]
    phase_ns = result.extras["phase_sim_ns"]
    assert phase_ns == result.insert.sim_ns + result.query.sim_ns + result.delete.sim_ns
    assert abs(span_ns - phase_ns) <= 1.0 * ops  # acceptance: 1 ns/op
    # stage spans nest under exactly the three op spans
    spans = result.spans["spans"]
    tops = {p for p in spans if "/" not in p}
    assert tops == {"insert", "query", "delete"}


def test_runresult_observability_serde_roundtrip():
    from repro.bench.runner import RunResult

    result = run_workload(_traced_spec())
    payload = result.to_dict()
    json.dumps(payload)
    rebuilt = RunResult.from_dict(payload)
    assert rebuilt.metrics == result.metrics
    assert rebuilt.spans == result.spans
    assert rebuilt.trace_events == result.trace_events
    assert rebuilt.spec == result.spec


def test_engine_cache_roundtrips_observability(tmp_path):
    spec = _traced_spec()
    cold_engine = Engine(jobs=1, cache=ResultCache(tmp_path))
    (cold,) = cold_engine.run([spec])
    assert cold_engine.cache.misses == 1
    warm_engine = Engine(jobs=1, cache=ResultCache(tmp_path))
    (warm,) = warm_engine.run([spec])
    assert warm_engine.cache.hits == 1 and warm_engine.executed == 0
    assert warm.to_dict() == cold.to_dict()
    assert warm.metrics is not None and warm.trace_events


def test_traced_and_bare_specs_cache_separately(tmp_path):
    engine = Engine(jobs=1, cache=ResultCache(tmp_path))
    bare = _traced_spec(with_trace=False, with_metrics=False)
    (bare_result,) = engine.run([bare])
    (traced_result,) = engine.run([_traced_spec()])
    assert engine.cache.misses == 2
    assert bare_result.metrics is None
    assert traced_result.metrics is not None


# ----------------------------------------------------------------------
# profile experiment


def test_profile_experiment_quick(tmp_path):
    from repro.bench.config import SCALES
    from repro.bench.experiments import profile

    result = profile.run(
        SCALES["tiny"],
        seed=7,
        engine=Engine(jobs=1, cache=False),
        schemes=("group", "linear", "path"),
    )
    schemes = result.data["schemes"]
    assert set(schemes) == {"group", "linear", "path"}
    for name, payload in schemes.items():
        hists = payload["metrics"]["histograms"]
        assert any(k.endswith("_probe_cells") for k in hists)
        rec = payload["reconciliation"]
        assert abs(rec["span_sim_ns"] - rec["phase_sim_ns"]) <= rec["ops"]
    trace = result.data["chrome_trace"]
    json.dumps(trace)
    pids = {e["pid"] for e in trace["traceEvents"]}
    assert len(pids) == 3
    assert "Attribution — group" in result.text
    assert "Hottest level-2 groups" in result.text


def test_memstats_from_dict_matches_run(tmp_path):
    # metrics blocks carried through JSON keep int exactness
    result = run_workload(_traced_spec())
    payload = json.loads(json.dumps(result.metrics))
    merged = merge_metric_dicts([payload, payload])
    counters = merged["counters"]
    for name, value in counters.items():
        assert value == 2 * result.metrics["counters"][name]
    stats = MemStats(reads=3).as_dict()
    assert MemStats.from_dict(json.loads(json.dumps(stats))).reads == 3
