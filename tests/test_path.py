"""Scheme-specific tests for path hashing (levels, position sharing,
path shortening, non-contiguity)."""

import pytest

from tests.conftest import random_items, small_region

from repro import PathHashingTable


def build(n_cells=256, reserved_levels=20, seed=1):
    region = small_region()
    return region, PathHashingTable(
        region, n_cells, reserved_levels=reserved_levels, seed=seed
    )


def test_level_geometry_halves():
    _, table = build(n_cells=256)
    assert table._level_sizes[0] == 256
    for i in range(1, table.reserved_levels):
        assert table._level_sizes[i] == 256 >> i


def test_reserved_levels_cap_allocation():
    _, table = build(n_cells=256, reserved_levels=3)
    assert table.reserved_levels == 3
    assert table.capacity == 256 + 128 + 64


def test_reserved_levels_clamped_to_tree_height():
    _, table = build(n_cells=16, reserved_levels=20)
    # 16 leaves → levels of 16, 8, 4, 2, 1: five levels max
    assert table.reserved_levels == 5
    assert table.capacity == 16 + 8 + 4 + 2 + 1


def test_capacity_close_to_double_level0():
    _, table = build(n_cells=256, reserved_levels=20)
    assert 256 < table.capacity <= 2 * 256


def test_levels_are_separate_allocations():
    """The property the paper's motivation hinges on: consecutive path
    cells live in different arrays (different cacheline neighbourhoods)."""
    _, table = build(n_cells=256)
    bases = table._level_bases
    assert len(set(bases)) == len(bases)
    assert bases == sorted(bases)
    # level arrays don't overlap
    for i in range(len(bases) - 1):
        end_i = bases[i] + table.codec.array_bytes(table._level_sizes[i])
        assert end_i <= bases[i + 1]


def test_descends_to_lower_level_on_collision():
    region, table = build(n_cells=64)
    # find two keys sharing BOTH level-0 positions is hard; instead fill
    # both level-0 cells of a victim key and check it lands in level 1+
    victim = b"\x09" * 8
    p1, p2 = table._positions(victim)
    filler_keys = []
    i = 0
    while len(filler_keys) < 2 and i < 10**6:
        k = i.to_bytes(8, "little")
        q1, q2 = table._positions(k)
        if k != victim and (q1 == p1 or q2 == p2 or q1 == p2 or q2 == p1):
            filler_keys.append(k)
        i += 1
    # occupy the victim's two level-0 cells directly via inserts of keys
    # that map there (or fall back: force-occupy by writing cells)
    for addr in (table._cell_addr(0, p1), table._cell_addr(0, p2)):
        if not table.codec.is_occupied(region, addr):
            table.codec.write_kv(region, addr, b"\xEE" * 8, b"\xEE" * 8)
            table.codec.set_occupied(region, addr, True)
    assert table.insert(victim, b"v" * 8)
    assert table.query(victim) == b"v" * 8
    # the item is NOT in level 0
    for addr in (table._cell_addr(0, p1), table._cell_addr(0, p2)):
        assert table.codec.read_key(region, addr) != victim


def test_path_positions_shift_per_level():
    _, table = build(n_cells=64)
    key = b"\x21" * 8
    p1, p2 = table._positions(key)
    cells = list(table._path_cells(key))
    # first cells are level 0 at p1 (and p2 if distinct)
    assert cells[0] == table._cell_addr(0, p1)
    # a level-i candidate is at position p >> i
    expected_level1 = table._cell_addr(1, p1 >> 1)
    assert expected_level1 in cells


def test_position_sharing_two_leaves_share_parent():
    _, table = build(n_cells=64)
    # leaves 6 and 7 share parent cell 3 at level 1
    assert (6 >> 1) == (7 >> 1) == 3


def test_full_crud_cycle():
    _, table = build(n_cells=256)
    items = random_items(150, seed=2)
    accepted = [(k, v) for k, v in items if table.insert(k, v)]
    assert len(accepted) >= 140
    for k, v in accepted:
        assert table.query(k) == v
    for k, _ in accepted[::3]:
        assert table.delete(k)
    assert table.count == len(accepted) - len(accepted[::3])


def test_high_space_utilization():
    """Path hashing's selling point (Figure 7): >90% utilization."""
    _, table = build(n_cells=512, reserved_levels=10)
    accepted = 0
    for k, v in random_items(2000, seed=3):
        if table.insert(k, v):
            accepted += 1
        else:
            break
    assert accepted / table.capacity > 0.85


def test_rounds_to_power_of_two():
    _, table = build(n_cells=100)
    assert table._level_sizes[0] == 64


def test_rejects_bad_levels():
    region = small_region()
    with pytest.raises(ValueError):
        PathHashingTable(region, 64, reserved_levels=0)
