"""Persist-*ordering* tests — the property the paper's consistency
argument actually rests on.

Crash fuzzing (test_crash_consistency.py) shows recovery works; these
tests pin the mechanism: using the region's event hook, we record the
program-order sequence of write/flush/fence events and assert the exact
orderings of Algorithms 1 and 3:

- insert: key-value bytes are written AND flushed AND fenced *before*
  the header word (bitmap) store issues; the bitmap is flushed before
  the count store;
- delete: the bitmap store issues *before* the key-value clear (the
  reverse of insert — the paper's Section 3.4 subtlety);
- undo log: a cell's pre-image is flushed before the cell is
  overwritten.
"""


from tests.conftest import make_table, small_region

from repro.tables.cell import HEADER_SIZE


class EventRecorder:
    """Capture (kind, addr, size) in program order."""

    def __init__(self, region):
        self.events: list[tuple[str, int, int]] = []
        region.event_hook = self

    def __call__(self, kind, addr, size):
        self.events.append((kind, addr, size))

    def index_of(self, kind, predicate):
        for i, (k, addr, size) in enumerate(self.events):
            if k == kind and predicate(addr, size):
                return i
        raise AssertionError(f"no {kind} event matching predicate")

    def clear(self):
        self.events.clear()


def cell_addr_of(table, key):
    """Address of the cell holding ``key`` (scheme-independent: scans
    the cell inventory via cost-free peeks)."""
    from repro.tables.cell import OCCUPIED_BIT

    spec = table.spec
    for addr in table._iter_cell_addrs():
        header = table.region.peek_volatile(addr, 1)
        if header[0] & OCCUPIED_BIT:
            if table.region.peek_volatile(addr + HEADER_SIZE, spec.key_size) == key:
                return addr
    raise AssertionError("key not found in any cell")


def test_insert_orders_kv_before_bitmap_before_count():
    region = small_region()
    table = make_table("group", region)
    rec = EventRecorder(region)
    key, value = b"ordering", b"evidence"
    assert table.insert(key, value)
    addr = cell_addr_of(table, key)

    kv_write = rec.index_of("write", lambda a, s: a == addr + HEADER_SIZE and s == 16)
    kv_flush = rec.index_of("flush", lambda a, s: a <= addr + HEADER_SIZE < a + s)
    header_write = rec.index_of("write", lambda a, s: a == addr and s == 8)
    header_flush = max(
        i
        for i, (k, a, s) in enumerate(rec.events)
        if k == "flush" and a <= addr < a + s
    )
    count_write = rec.index_of(
        "write", lambda a, s: a == table._count_addr and s == 8
    )
    # Algorithm 1 lines 4-9, exactly:
    assert kv_write < kv_flush < header_write < header_flush < count_write
    # and a fence separates the kv persist from the bitmap store
    assert any(
        k == "fence" for k, _, _ in rec.events[kv_flush + 1 : header_write]
    )


def test_delete_orders_bitmap_before_kv_clear():
    region = small_region()
    table = make_table("group", region)
    key, value = b"ordering", b"evidence"
    table.insert(key, value)
    addr = cell_addr_of(table, key)
    rec = EventRecorder(region)
    assert table.delete(key)

    header_write = rec.index_of("write", lambda a, s: a == addr and s == 8)
    kv_clear = rec.index_of("write", lambda a, s: a == addr + HEADER_SIZE and s == 16)
    count_write = rec.index_of("write", lambda a, s: a == table._count_addr)
    # Algorithm 3 lines 4-9: bitmap first, then the clear, then count
    assert header_write < kv_clear < count_write


def test_every_scheme_flushes_kv_before_committing_header():
    """The shared _install discipline holds for every scheme that uses
    it (all cell-based baselines)."""
    for scheme in ("linear", "pfht", "path", "two-choice", "group"):
        region = small_region()
        table = make_table(scheme, region)
        rec = EventRecorder(region)
        key, value = b"ordering", b"evidence"
        assert table.insert(key, value)
        addr = cell_addr_of(table, key)
        kv_write = rec.index_of(
            "write", lambda a, s: a == addr + HEADER_SIZE and s == 16
        )
        kv_flush = rec.index_of("flush", lambda a, s: a <= addr + HEADER_SIZE < a + s)
        header_write = rec.index_of("write", lambda a, s: a == addr and s == 8)
        assert kv_write < kv_flush < header_write, scheme


def test_undo_log_flushes_preimage_before_overwrite():
    region = small_region()
    table = make_table("linear", region, logged=True)
    key, value = b"ordering", b"evidence"
    table.insert(key, value)
    addr = cell_addr_of(table, key)
    rec = EventRecorder(region)
    table.delete(key)
    log = table.log
    # first log-entry write lands in the entries area
    entry_write = rec.index_of(
        "write", lambda a, s: log._entries_addr <= a < log._entries_addr + 4096
    )
    entry_flush = rec.index_of(
        "flush", lambda a, s: log._entries_addr <= a < log._entries_addr + 4096
    )
    cell_mutation = rec.index_of("write", lambda a, s: addr <= a < addr + 24)
    assert entry_write < entry_flush < cell_mutation


def test_insert_issues_no_reads_of_other_groups():
    """Group sharing's locality contract: an insert touches only the
    home cell's line(s), its matched group, and the metadata block —
    never another group."""
    region = small_region()
    table = make_table("group", region)
    key = b"ordering"
    rec = EventRecorder(region)
    table.insert(key, b"evidence")
    layout, codec = table.layout, table.codec
    k = layout.slot(table._hashes[0](key))
    group_start = layout.group_start(k)
    valid_ranges = [
        (table._info_addr, 64),
        (layout.tab1_addr(codec, k), codec.cell_size),
        (
            layout.tab2_addr(codec, group_start),
            codec.cell_size * table.group_size,
        ),
    ]
    for kind, a, s in rec.events:
        if kind == "fence":
            continue
        # flushes arrive line-aligned, so compare with one line of slack
        assert any(
            a + s > lo - 64 and a < lo + length + 64
            for lo, length in valid_ranges
        ), (kind, a, s)
