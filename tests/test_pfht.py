"""Scheme-specific tests for PFHT (buckets, single displacement, stash)."""

import pytest

from tests.conftest import random_items, small_region

from repro import PFHTTable


def build(n_cells=64, bucket_size=4, stash_fraction=0.05, seed=1):
    region = small_region()
    return region, PFHTTable(
        region,
        n_cells,
        bucket_size=bucket_size,
        stash_fraction=stash_fraction,
        seed=seed,
    )


def keys_for_buckets(table, b1, b2=None, avoid=(), limit=10**6):
    """Brute-force keys whose (h1, h2) buckets match."""
    out = []
    for i in range(limit):
        key = i.to_bytes(8, "little")
        if key in avoid:
            continue
        kb1, kb2 = table._buckets_of(key)
        if kb1 == b1 and (b2 is None or kb2 == b2):
            out.append(key)
            if len(out) >= 12:
                return out
    return out


def test_geometry():
    _, table = build(n_cells=64, bucket_size=4)
    assert table.n_buckets == 16
    assert table.stash_cells == max(1, round(64 * 0.05))
    assert table.capacity == 64 + table.stash_cells


def test_insert_prefers_first_bucket():
    region, table = build()
    key = b"\x01" * 8
    b1, _ = table._buckets_of(key)
    table.insert(key, b"v" * 8)
    found = False
    for slot in range(table.bucket_size):
        occ, k = table.codec.probe(region, table._cell_addr(b1, slot))
        found |= occ and k == key
    assert found


def test_bucket_overflow_goes_to_second_bucket():
    region, table = build()
    target = b"\x07" * 8
    b1, b2 = table._buckets_of(target)
    if b1 == b2:
        pytest.skip("degenerate key (both hashes equal) for this seed")
    # fill bucket b1 with keys homed there
    fillers = keys_for_buckets(table, b1, avoid={target})[: table.bucket_size]
    assert len(fillers) == table.bucket_size
    for k in fillers:
        assert table.insert(k, b"f" * 8)
    assert table.insert(target, b"v" * 8)
    in_b2 = any(
        table.codec.probe(region, table._cell_addr(b2, s)) == (True, target)
        for s in range(table.bucket_size)
    )
    assert in_b2 or table.query(target) == b"v" * 8


def test_query_checks_both_buckets_and_stash():
    _, table = build()
    items = random_items(40, seed=2)
    for k, v in items:
        assert table.insert(k, v)
    for k, v in items:
        assert table.query(k) == v


def test_stash_used_when_buckets_full():
    """Cram items until the stash holds something, then verify lookups."""
    _, table = build(n_cells=32, stash_fraction=0.25)
    inserted = []
    for k, v in random_items(200, seed=3):
        if not table.insert(k, v):
            break
        inserted.append((k, v))
    assert table.stash_occupancy() > 0
    for k, v in inserted:
        assert table.query(k) == v


def test_displacement_moves_at_most_one_item():
    """PFHT's defining bound: one insert relocates at most one existing
    item (no cuckoo cascades). We verify via write accounting: an insert
    writes at most 2 cells' key-value fields."""
    region, table = build(n_cells=64)
    max_kv_writes = 0
    for k, v in random_items(60, seed=4):
        writes_before = region.stats.writes
        if not table.insert(k, v):
            break
        # one displacement = _relocate (4 writes) + _install (3 writes);
        # a cuckoo cascade of two displacements would need ≥ 11
        max_kv_writes = max(max_kv_writes, region.stats.writes - writes_before)
    assert max_kv_writes <= 7


def test_delete_from_stash():
    _, table = build(n_cells=32, stash_fraction=0.25)
    inserted = []
    for k, v in random_items(200, seed=5):
        if not table.insert(k, v):
            break
        inserted.append((k, v))
    assert table.stash_occupancy() > 0
    # delete everything; stash entries must be deletable too
    for k, _ in inserted:
        assert table.delete(k)
    assert table.count == 0
    assert table.stash_occupancy() == 0


def test_insert_fails_when_everything_full():
    _, table = build(n_cells=16, stash_fraction=0.1)
    accepted = 0
    for k, v in random_items(400, seed=6):
        if table.insert(k, v):
            accepted += 1
    assert accepted < 400
    assert accepted == table.count


def test_stash_fraction_of_paper():
    """Paper setting: 3% stash."""
    _, table = build(n_cells=1024, stash_fraction=0.03)
    assert table.stash_cells == round(1024 * 0.03)


def test_rejects_bad_bucket_size():
    region = small_region()
    with pytest.raises(ValueError):
        PFHTTable(region, 64, bucket_size=0)
