"""Tests for the sequential-stream prefetcher model.

The prefetcher is the substrate mechanism behind the paper's central
cache-efficiency argument: contiguous collision cells (linear probing
clusters, group-hashing level-2 groups) are cheap to scan; scattered
ones (path hashing levels) are not.
"""

import pytest

from repro.nvm import CacheConfig, NVMRegion, SimConfig
from repro.nvm.latency import PAPER_NVM

CFG = SimConfig(cache=CacheConfig(size_bytes=4096, line_size=64, associativity=2))


def region(size=1 << 16) -> NVMRegion:
    return NVMRegion(size, CFG)


def test_sequential_scan_counts_one_demand_miss():
    r = region()
    for line in range(8):
        r.read(line * 64, 8)
    assert r.stats.cache_misses == 1
    assert r.stats.prefetched_fills == 7


def test_random_jumps_all_miss():
    r = region()
    # stride of 3 lines breaks the next-line pattern
    for line in (0, 3, 6, 9):
        r.read(line * 64, 8)
    assert r.stats.cache_misses == 4
    assert r.stats.prefetched_fills == 0


def test_prefetched_access_is_cheaper():
    r1 = region()
    r1.read(0, 8)
    t0 = r1.stats.sim_time_ns
    r1.read(64, 8)  # next line: prefetched
    prefetched_cost = r1.stats.sim_time_ns - t0

    r2 = region()
    r2.read(0, 8)
    t0 = r2.stats.sim_time_ns
    r2.read(3 * 64, 8)  # jump: demand miss
    miss_cost = r2.stats.sim_time_ns - t0

    assert prefetched_cost == pytest.approx(PAPER_NVM.prefetch_hit_ns)
    assert miss_cost == pytest.approx(PAPER_NVM.line_fill_ns)
    assert prefetched_cost < miss_cost


def test_multiline_access_prefetches_trailing_lines():
    r = region()
    r.read(0, 200)  # touches lines 0..3
    assert r.stats.cache_misses == 1
    assert r.stats.prefetched_fills == 3


def test_backward_scan_is_not_prefetched():
    r = region()
    for line in (5, 4, 3, 2):
        r.read(line * 64, 8)
    assert r.stats.cache_misses == 4
    assert r.stats.prefetched_fills == 0


def test_hit_does_not_count_as_prefetch():
    r = region()
    r.read(0, 8)
    r.read(0, 8)
    assert r.stats.cache_hits == 1
    assert r.stats.prefetched_fills == 0


def test_stream_resumes_after_interruption():
    """line N hit, then line N+1 miss still counts as prefetched (the
    stream detector keys on the previous touched line, hit or miss)."""
    r = region()
    r.read(0, 8)   # miss line 0
    r.read(0, 16)  # hit line 0
    r.read(64, 8)  # line 1 = prev+1: prefetched
    assert r.stats.prefetched_fills == 1
