"""Model-based property tests: every scheme vs a plain dict.

Hypothesis drives random insert/delete/query sequences against each
hashing scheme and a reference dict; visible behaviour must match
exactly (modulo capacity rejections, which the model tracks).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import make_table, small_region

KEYS = st.integers(0, 40).map(lambda i: i.to_bytes(8, "little"))
VALUES = st.integers(0, 255).map(lambda b: bytes([b]) * 8)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), KEYS, VALUES),
        st.tuples(st.just("delete"), KEYS, st.just(b"")),
        st.tuples(st.just("query"), KEYS, st.just(b"")),
    ),
    max_size=60,
)


def run_model_comparison(scheme: str, ops) -> None:
    region = small_region()
    table = make_table(scheme, region)
    model: dict[bytes, bytes] = {}
    for op, key, value in ops:
        if op == "insert":
            if key in model:
                # duplicate-key inserts are outside the paper's contract
                # (Algorithm 1 never checks); skip like the harness does
                continue
            ok = table.insert(key, value)
            if ok:
                model[key] = value
            # a rejection is only legal when the table is under pressure;
            # with ≤ 41 distinct keys in ≥ 448 cells it must not happen
            # except for two-choice (2 candidate cells per key)
            if scheme != "two-choice":
                assert ok, f"{scheme} rejected insert at count {table.count}"
        elif op == "delete":
            assert table.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert table.query(key) == model.get(key)
    assert table.count == len(model)
    assert dict(table.items()) == model
    assert table.check_count()


# One explicit test per scheme (clearer failure reporting than a single
# parametrized @given, which hypothesis does not support directly).


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_linear_matches_model(ops):
    run_model_comparison("linear", ops)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_pfht_matches_model(ops):
    run_model_comparison("pfht", ops)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_path_matches_model(ops):
    run_model_comparison("path", ops)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_group_matches_model(ops):
    run_model_comparison("group", ops)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_chained_matches_model(ops):
    run_model_comparison("chained", ops)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_two_choice_matches_model(ops):
    run_model_comparison("two-choice", ops)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_logged_linear_matches_model(ops):
    """The -L wrapper must not change visible semantics."""
    region = small_region()
    table = make_table("linear", region, logged=True)
    model: dict[bytes, bytes] = {}
    for op, key, value in ops:
        if op == "insert":
            if key in model:
                continue
            if table.insert(key, value):
                model[key] = value
        elif op == "delete":
            assert table.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert table.query(key) == model.get(key)
    assert dict(table.items()) == model
