"""Public API surface tests: everything README documents must exist and
stay importable from the top-level package."""

import inspect

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ lists missing name {name}"


def test_core_classes_exported():
    for name in (
        "NVMRegion",
        "SimConfig",
        "CacheConfig",
        "CacheSim",
        "LatencyModel",
        "MemStats",
        "GroupHashTable",
        "LinearProbingTable",
        "PFHTTable",
        "PathHashingTable",
        "ChainedHashTable",
        "TwoChoiceTable",
        "UndoLog",
        "ItemSpec",
        "CellCodec",
    ):
        assert hasattr(repro, name)


def test_crash_helpers_exported():
    assert callable(repro.drop_all_schedule)
    assert callable(repro.persist_all_schedule)
    assert callable(repro.random_schedule)
    assert issubclass(repro.SimulatedPowerFailure, RuntimeError)


def test_table_classes_share_base():
    from repro import PersistentHashTable

    for cls in (
        repro.GroupHashTable,
        repro.LinearProbingTable,
        repro.PFHTTable,
        repro.PathHashingTable,
        repro.ChainedHashTable,
        repro.TwoChoiceTable,
    ):
        assert issubclass(cls, PersistentHashTable)
        assert cls.scheme_name != "abstract"


def test_public_classes_have_docstrings():
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name} lacks a docstring"


def test_readme_quickstart_executes():
    """The README's quickstart snippet, verbatim in behaviour."""
    from repro import GroupHashTable, ItemSpec, NVMRegion, random_schedule

    region = NVMRegion(16 << 20)
    table = GroupHashTable(
        region, n_cells=2**14, spec=ItemSpec(key_size=8, value_size=8), group_size=256
    )
    table.insert(b"\x15\0\0\0\0\0\0\0", b"HashTabl")
    assert table.query(b"\x15\0\0\0\0\0\0\0") == b"HashTabl"
    region.crash(random_schedule(seed=1))
    table.reattach()
    table.recover()
    assert table.check_count()
    assert region.stats.sim_time_ns > 0


def test_module_docstring_quickstart_executes():
    """The package docstring's example must not rot."""
    from repro import GroupHashTable, ItemSpec, NVMRegion

    region = NVMRegion(8 << 20)
    table = GroupHashTable(region, n_cells=2**12, spec=ItemSpec(8, 8))
    table.insert(b"k" * 8, b"v" * 8)
    assert table.query(b"k" * 8) == b"v" * 8
    region.crash()
    table.recover()
