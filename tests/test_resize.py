"""Tests for the table-expansion extension (core/resize.py)."""

import pytest

from tests.conftest import random_items, small_region

from repro import (
    DirectoryTable,
    ExpansionError,
    GroupHashTable,
    GrowableTable,
    ItemSpec,
    NVMRegion,
    expand_group_table,
    insert_with_expansion,
)
from repro.tables.cell import CellCodec


def build(n_cells=128, group_size=8):
    region = small_region()
    return region, GroupHashTable(region, n_cells, group_size=group_size)


def test_expand_preserves_all_items():
    region, table = build()
    items = random_items(80, seed=1)
    accepted = {k: v for k, v in items if table.insert(k, v)}
    bigger = expand_group_table(table)
    assert bigger.capacity == 2 * table.capacity
    assert bigger.count == len(accepted)
    for k, v in accepted.items():
        assert bigger.query(k) == v
    assert bigger.check_count()


def test_expand_leaves_old_table_intact():
    region, table = build()
    items = {k: v for k, v in random_items(50, seed=2)}
    for k, v in items.items():
        table.insert(k, v)
    expand_group_table(table)
    assert dict(table.items()) == items  # untouched


def test_expand_into_fresh_region():
    _, table = build()
    for k, v in random_items(50, seed=3):
        table.insert(k, v)
    fresh = NVMRegion(4 << 20)
    bigger = expand_group_table(table, region=fresh)
    assert bigger.region is fresh
    assert bigger.count == table.count


def test_expand_unclogs_a_full_group():
    """The paper's trigger: insert fails when one group fills. After
    expansion the same key inserts."""
    _, table = build(n_cells=64, group_size=4)

    def key_for_slot(slot, avoid=()):
        i = 0
        while True:
            key = i.to_bytes(8, "little")
            if key not in avoid and table.layout.slot(table._hashes[0](key)) == slot:
                return key
            i += 1

    keys = [key_for_slot(5)]
    while len(keys) < 6:
        keys.append(key_for_slot(5, avoid=set(keys)))
    for k in keys[:5]:  # home cell + 4-cell group: full
        assert table.insert(k, b"v" * 8)
    assert not table.insert(keys[5], b"v" * 8)
    bigger = expand_group_table(table)
    assert bigger.insert(keys[5], b"v" * 8)
    for k in keys:
        assert bigger.query(k) == b"v" * 8


def test_insert_with_expansion_round_trip():
    region, table = build(n_cells=64, group_size=4)
    model = {}
    for k, v in random_items(120, seed=4):
        table, ok = insert_with_expansion(
            table,
            k,
            v,
            region_factory=lambda cells, spec: NVMRegion(8 << 20),
        )
        assert ok
        model[k] = v
    assert dict(table.items()) == model
    assert table.capacity > 64  # must have expanded at least once


def test_growth_factor_validation():
    _, table = build()
    with pytest.raises(ValueError):
        expand_group_table(table, growth_factor=1)


def test_expansion_error_when_region_too_small():
    region = NVMRegion(64 * 1024)
    table = GroupHashTable(region, 1024, ItemSpec(), group_size=32)
    # same region cannot hold another 2048-cell table
    with pytest.raises(ExpansionError):
        expand_group_table(table)


def test_failed_insert_builds_exactly_max_expansions_tables(monkeypatch):
    """Regression: the retry loop used to run ``max_expansions + 1``
    iterations with the expansion *after* the failed insert, so it built
    (and leaked) one final table that was never offered the key."""
    _, table = build(n_cells=64, group_size=4)
    cap0 = table.capacity
    built = []

    def factory(n_cells, spec):
        built.append(n_cells)
        return NVMRegion(8 << 20)

    # an insert that always fails: the empty table expands without
    # re-inserting anything, so only the retry loop's attempts count
    monkeypatch.setattr(GroupHashTable, "insert", lambda self, k, v: False)
    table, ok = insert_with_expansion(
        table, b"k" * 8, b"v" * 8, region_factory=factory, max_expansions=3
    )
    assert not ok
    assert built == [cap0 * 2, cap0 * 4, cap0 * 8]  # pre-fix: one more
    assert table.capacity == cap0 * 8


def test_failed_expansion_abandons_at_most_one_doubled_table():
    """Leak accounting: a failed in-region expansion strands at most one
    doubled table's footprint, and the region reports exactly what the
    abandoned construction had allocated."""
    region = NVMRegion(64 * 1024)
    table = GroupHashTable(region, 1024, ItemSpec(), group_size=32)
    assert region.abandoned_bytes == 0
    allocated_before = region.bytes_allocated
    with pytest.raises(ExpansionError):
        expand_group_table(table)
    stranded = region.bytes_allocated - allocated_before
    assert region.abandoned_bytes == stranded
    assert 0 < region.abandoned_bytes
    # the one-failed-expansion bound: info block + the doubled arrays
    codec = CellCodec(table.spec)
    assert region.abandoned_bytes <= 64 + codec.array_bytes(2 * table.capacity)


def test_growable_rebuild_mode_expands_and_counts():
    _, table = build(n_cells=64, group_size=4)
    growable = GrowableTable(
        table,
        mode="rebuild",
        region_factory=lambda cells, spec: NVMRegion(8 << 20),
    )
    model = {}
    for k, v in random_items(120, seed=21):
        assert growable.insert(k, v)
        model[k] = v
    assert growable.expansions >= 1
    assert growable.capacity > 64
    assert dict(growable.items()) == model
    assert growable.count == len(model)
    assert growable.check_count()


def test_growable_incremental_mode_adopts_a_directory():
    """The default mode retires the stop-the-world rebuild: the wrapped
    table becomes a directory whose full segments split in place."""
    region = small_region()
    table = GroupHashTable(region, 64, ItemSpec(), group_size=8)
    growable = GrowableTable(table)
    assert growable.mode == "incremental"
    assert isinstance(growable.table, DirectoryTable)
    model = {}
    for k, v in random_items(150, seed=22):
        assert growable.insert(k, v)
        model[k] = v
    assert growable.expansions == 0  # no rebuild ever
    assert growable.table.splits >= 3
    assert dict(growable.items()) == model
    assert growable.check_count()


def test_growable_mode_validation():
    _, table = build()
    with pytest.raises(ValueError):
        GrowableTable(table, mode="nope")


def test_expanded_table_survives_crash():
    region, table = build()
    for k, v in random_items(60, seed=5):
        table.insert(k, v)
    fresh = NVMRegion(4 << 20)
    bigger = expand_group_table(table, region=fresh)
    snapshot = dict(bigger.items())
    fresh.crash()
    bigger.reattach()
    bigger.recover()
    assert dict(bigger.items()) == snapshot
    assert bigger.check_count()
