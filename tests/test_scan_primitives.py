"""Three-way parity for the vectorized scan primitives.

Every bulk-probe primitive has three implementations: the simulator's
read-loop reference (:class:`NVMRegion`), the raw backend's numpy fast
path, and the raw backend's pure-Python fallback (``REPRO_NO_NUMPY=1``).
The contract is that all three return identical results **and** charge
identical access counts (``reads`` / ``bytes_read``) — an accelerated
scan must account like the reference loop it replaces, or the paper's
simulated event counts would silently drift with the host's numpy
availability.
"""

from __future__ import annotations

import random

import pytest

from tests.conftest import small_region

from repro import RawBackend

STRIDE = 32
COUNT = 40
KEY_OFFSET = 8
KEY_SIZE = 8
BASE = 4096


def _fill(backend, occupied_mod: int = 3, dup_every: int = 11) -> None:
    """Deterministic cell array: cell i occupied iff i % occupied_mod,
    key = i (with a duplicate key every ``dup_every`` cells)."""
    for i in range(COUNT):
        addr = BASE + i * STRIDE
        if i % occupied_mod:
            backend.write_u64(addr, 1 | (i << 8))
            k = (i // dup_every) * dup_every if i % dup_every == 0 else i
            backend.write(addr + KEY_OFFSET, k.to_bytes(KEY_SIZE, "little"))
        else:
            backend.write_u64(addr, i << 8)  # mask bit clear, junk above


def _backends(monkeypatch):
    """(label, backend) triples: sim reference, raw+numpy, raw pure."""
    sim = small_region()
    monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
    fast = RawBackend(4 << 20)
    assert fast._np is not None, "numpy must be available in this image"
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    pure = RawBackend(4 << 20)
    monkeypatch.delenv("REPRO_NO_NUMPY")
    assert pure._np is None
    for b in (sim, fast, pure):
        _fill(b)
    return [("sim", sim), ("raw-numpy", fast), ("raw-pure", pure)]


def _counts(backend):
    s = backend.stats
    return (s.reads, s.bytes_read)


def _assert_parity(backends, call):
    """Run ``call`` on each backend; identical result and count deltas."""
    outcomes = []
    for label, b in backends:
        before = _counts(b)
        result = call(b)
        delta = tuple(a - x for a, x in zip(_counts(b), before))
        outcomes.append((label, result, delta))
    ref_label, ref_result, ref_delta = outcomes[0]
    for label, result, delta in outcomes[1:]:
        assert result == ref_result, f"{label} result != {ref_label}"
        assert delta == ref_delta, f"{label} access counts != {ref_label}"
    return ref_result


def key_of(i: int) -> bytes:
    return i.to_bytes(KEY_SIZE, "little")


def test_scan_clear_u64_parity(monkeypatch):
    backends = _backends(monkeypatch)
    first_clear = _assert_parity(
        backends, lambda b: b.scan_clear_u64(BASE, STRIDE, COUNT)
    )
    assert first_clear == 0  # cell 0 is empty by construction
    # start past it: next empty is the next multiple of 3
    assert (
        _assert_parity(
            backends,
            lambda b: b.scan_clear_u64(BASE + STRIDE, STRIDE, COUNT - 1),
        )
        == 2
    )
    # all-occupied window → None, full scan charged
    _assert_parity(backends, lambda b: b.scan_clear_u64(BASE + STRIDE, STRIDE, 2))


def test_scan_match_parity(monkeypatch):
    backends = _backends(monkeypatch)
    hit = _assert_parity(
        backends,
        lambda b: b.scan_match(
            BASE, STRIDE, COUNT, key_of(7), key_offset=KEY_OFFSET
        ),
    )
    assert hit == 7
    # key stored in an *empty* cell's slot must not match (cell 0 empty)
    assert (
        _assert_parity(
            backends,
            lambda b: b.scan_match(
                BASE, STRIDE, COUNT, key_of(0), key_offset=KEY_OFFSET
            ),
        )
        is None
    )


def test_scan_occupied_bitmap_parity(monkeypatch):
    backends = _backends(monkeypatch)
    bitmap = _assert_parity(
        backends, lambda b: b.scan_occupied_bitmap(BASE, STRIDE, COUNT)
    )
    expected = sum(1 << i for i in range(COUNT) if i % 3)
    assert bitmap == expected


def test_gather_primitives_parity(monkeypatch):
    backends = _backends(monkeypatch)
    # scattered, deliberately unsorted address list (mix of occupancy)
    idxs = [5, 0, 17, 3, 30, 12, 9]
    addrs = [BASE + i * STRIDE for i in idxs]
    bitmap = _assert_parity(backends, lambda b: b.scan_occupied_at(addrs))
    assert bitmap == sum(1 << j for j, i in enumerate(idxs) if i % 3)
    assert _assert_parity(backends, lambda b: b.scan_clear_at(addrs)) == 1
    assert (
        _assert_parity(
            backends,
            lambda b: b.scan_match_at(addrs, key_of(17), key_offset=KEY_OFFSET),
        )
        == 2
    )
    assert (
        _assert_parity(
            backends,
            lambda b: b.scan_match_at(addrs, key_of(99), key_offset=KEY_OFFSET),
        )
        is None
    )


def test_scan_match_many_parity(monkeypatch):
    backends = _backends(monkeypatch)
    keys = [key_of(4), key_of(0), key_of(25), key_of(99), key_of(4)]
    result = _assert_parity(
        backends,
        lambda b: b.scan_match_many(
            BASE, STRIDE, COUNT, keys, key_offset=KEY_OFFSET
        ),
    )
    assert result == [4, None, 25, None, 4]


def test_scan_probe_parity(monkeypatch):
    backends = _backends(monkeypatch)
    # match before any empty cell (start at cell 1, occupied)
    assert _assert_parity(
        backends,
        lambda b: b.scan_probe(
            BASE + STRIDE, STRIDE, COUNT - 1, key_of(2), key_offset=KEY_OFFSET
        ),
    ) == (1, True)
    # empty cell before the match → (index, False)
    assert _assert_parity(
        backends,
        lambda b: b.scan_probe(
            BASE, STRIDE, COUNT, key_of(2), key_offset=KEY_OFFSET
        ),
    ) == (0, False)
    # neither in a fully-occupied window → None
    assert (
        _assert_parity(
            backends,
            lambda b: b.scan_probe(
                BASE + STRIDE, STRIDE, 2, key_of(99), key_offset=KEY_OFFSET
            ),
        )
        is None
    )


def test_scan_match_pairs_parity(monkeypatch):
    backends = _backends(monkeypatch)
    pairs = [
        (BASE + 7 * STRIDE, key_of(7)),  # occupied, right key
        (BASE + 7 * STRIDE, key_of(8)),  # occupied, wrong key
        (BASE + 0 * STRIDE, key_of(0)),  # empty cell
        (BASE + 25 * STRIDE, key_of(25)),
    ]
    result = _assert_parity(
        backends, lambda b: b.scan_match_pairs(pairs, key_offset=KEY_OFFSET)
    )
    assert result == [True, False, False, True]


@pytest.mark.parametrize("key_size", [8, 12])
def test_fuzz_parity(monkeypatch, key_size):
    """Randomized occupancy/keys/windows across every primitive; the
    12-byte key exercises the generic (non-u64) raw fast path."""
    rng = random.Random(0xF00D + key_size)
    sim = small_region()
    monkeypatch.delenv("REPRO_NO_NUMPY", raising=False)
    fast = RawBackend(4 << 20)
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    pure = RawBackend(4 << 20)
    monkeypatch.delenv("REPRO_NO_NUMPY")
    stride = 8 + ((key_size + 7) // 8) * 8 + 8
    count = 64
    keys = []
    for i in range(count):
        addr = BASE + i * stride
        header = rng.choice([0, 1]) | (rng.getrandbits(32) << 8)
        key = rng.getrandbits(8 * key_size).to_bytes(key_size, "little")
        keys.append(key)
        for b in (sim, fast, pure):
            b.write_u64(addr, header)
            b.write(addr + 8, key)
    backends = [("sim", sim), ("raw-numpy", fast), ("raw-pure", pure)]
    for _ in range(40):
        start = rng.randrange(count)
        n = rng.randrange(1, count - start + 1)
        probe_key = rng.choice(keys + [b"\xff" * key_size])
        base = BASE + start * stride
        _assert_parity(backends, lambda b: b.scan_clear_u64(base, stride, n))
        _assert_parity(backends, lambda b: b.scan_occupied_bitmap(base, stride, n))
        _assert_parity(
            backends, lambda b: b.scan_match(base, stride, n, probe_key)
        )
        _assert_parity(
            backends, lambda b: b.scan_probe(base, stride, n, probe_key)
        )
        gather = [
            BASE + rng.randrange(count) * stride for _ in range(rng.randrange(1, 12))
        ]
        _assert_parity(backends, lambda b: b.scan_occupied_at(gather))
        _assert_parity(backends, lambda b: b.scan_clear_at(gather))
        _assert_parity(backends, lambda b: b.scan_match_at(gather, probe_key))
        pairs = [(a, rng.choice(keys)) for a in gather]
        _assert_parity(backends, lambda b: b.scan_match_pairs(pairs))
        many = [rng.choice(keys) for _ in range(5)]
        _assert_parity(
            backends, lambda b: b.scan_match_many(base, stride, n, many)
        )


def test_no_numpy_env_flag(monkeypatch):
    """The fallback flag is honoured at construction time."""
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert RawBackend(1 << 16)._np is None
    monkeypatch.delenv("REPRO_NO_NUMPY")
    assert RawBackend(1 << 16)._np is not None
    # unset (not just falsy) also enables the fast path
    monkeypatch.setenv("REPRO_NO_NUMPY", "")
    assert RawBackend(1 << 16)._np is not None
