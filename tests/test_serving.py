"""Tests for the networked serving tier.

Covers the tentpole guarantees: the frozen network cost model's
arithmetic, the router's doorbell protocol (batch-full and timer
flushes, timer invalidation by generation, sequential-server busy
time, per-flush wakeup amortization), driver determinism (same (spec,
seed) ⇒ identical interleaving, queue-depth timeline and final table
digest; different seed ⇒ a different schedule that still passes every
oracle), the location-cache protocol (one-sided hits, stale hints
repaired by miss-and-retry, never a wrong answer — enforced by a
shadow model with teeth), and engine integration (spec round trip,
executor repeatability, byte-identity across worker counts).
"""

import dataclasses

import pytest

from repro.bench.cache import ResultCache
from repro.bench.engine import Engine
from repro.bench.experiments.serving import ServingSpec, run_serving_spec
from repro.concurrency import ClientOp, table_digest
from repro.core import ShardedTable
from repro.obs import WindowSeries
from repro.serving import (
    LOOPBACK,
    NETWORK_PRESETS,
    RDMA_DC,
    NetworkModel,
    Request,
    Router,
    run_serving,
)

from .conftest import random_items


def make_serving_table(
    cells: int = 512, n_shards: int = 2, seed: int = 3, segment_cells: int = 32
) -> ShardedTable:
    return ShardedTable(
        cells,
        n_shards=n_shards,
        seed=seed,
        growable=True,
        segment_cells=segment_cells,
    )


def prefill(table, items):
    shadow = {}
    for key, value in items:
        assert table.insert(key, value)
        shadow[key] = value
    return shadow


def hot_streams(hot, per_reader: int, readers: int = 2):
    """Reader clients cycling over a shared hot set — every repeat query
    is a location-cache hit candidate."""
    return [
        [
            ClientOp("query", hot[(i + r) % len(hot)][0])
            for i in range(per_reader)
        ]
        for r in range(readers)
    ]


def commit_signature(result):
    return [
        (r.client, r.op_index, r.op.kind, r.op.key, r.ok, r.found, r.one_sided)
        for r in result.committed
    ]


# ----------------------------------------------------------------------
# network cost model


def test_network_model_arithmetic():
    net = NetworkModel("t", hop_ns=1000, msg_overhead_ns=200, ns_per_byte=0.5)
    # hop + overhead + bandwidth over (16-byte header + payload)
    assert net.message_ns(8) == 1000 + 200 + 0.5 * 24
    assert net.request_ns(8) == net.message_ns(8)
    assert net.response_ns(8) == net.message_ns(8)
    assert net.rpc_ns(8, 8) == 2 * net.message_ns(8)
    # one-sided: out + back hops, its own overhead, data on the return
    assert net.one_sided_read_ns(8) == 2 * 1000 + net.one_sided_overhead_ns + 0.5 * 24


def test_network_presets_registered_and_ordered():
    assert set(NETWORK_PRESETS) == {"rdma-dc", "tcp-lan", "loopback"}
    for name, net in NETWORK_PRESETS.items():
        assert net.name == name
    # the presets must keep their cost ordering or the bench's story flips
    assert LOOPBACK.message_ns(8) < RDMA_DC.message_ns(8)
    assert RDMA_DC.message_ns(8) < NETWORK_PRESETS["tcp-lan"].message_ns(8)


def test_network_model_frozen():
    with pytest.raises(dataclasses.FrozenInstanceError):
        RDMA_DC.hop_ns = 0


# ----------------------------------------------------------------------
# router doorbell protocol


def shard0_items(table, n: int, seed: int):
    """Deterministic items that all route to shard 0 (router unit tests
    drive one shard's queue directly)."""
    picked = [
        (k, v)
        for k, v in random_items(8 * n, seed=seed)
        if table.shard_of(k) == 0
    ]
    assert len(picked) >= n
    return picked[:n]


def queries(table, items, t: float = 0.0):
    return [
        Request(client=0, op_index=i, op=ClientOp("query", k), enqueue_ns=t)
        for i, (k, _) in enumerate(items)
    ]


def test_enqueue_doorbell_events():
    table = make_serving_table()
    items = shard0_items(table, 8, seed=1)
    prefill(table, items)
    router = Router(table, RDMA_DC, batch_max=3, batch_wait_ns=500.0)
    reqs = queries(table, items[:3], t=10.0)
    # first request of a fresh batch arms the timer...
    assert router.enqueue(0, reqs[0]) == ("timer", 510.0, 0)
    # ...the middle one changes nothing...
    assert router.enqueue(0, reqs[1]) is None
    # ...and the batch-filling one rings the doorbell now
    assert router.enqueue(0, reqs[2]) == ("flush", 10.0)
    replies, followup = router.flush(0, 10.0)
    assert [r.request for r in replies] == reqs
    assert followup is None
    # the flush retired the armed timer's generation
    assert not router.timer_valid(0, 0)


def test_flush_replies_and_busy_until():
    table = make_serving_table()
    items = shard0_items(table, 6, seed=2)
    shadow = prefill(table, items)
    router = Router(table, RDMA_DC, batch_max=8)
    for req in queries(table, items, t=5.0):
        router.enqueue(0, req)
    replies, followup = router.flush(0, 5.0)
    assert followup is None
    assert len(replies) == 6
    for reply in replies:
        assert reply.result == shadow[reply.request.op.key]
        assert reply.start_ns == 5.0
        assert reply.end_ns == router.busy_until[0]
        assert reply.delivery_ns > reply.end_ns
        shard, addr = reply.location
        assert shard == 0
        # the hint names the live segment that serves the key
        segment = table.tables[0].segment_at(addr)
        assert segment is not None
        assert segment.query(reply.request.op.key) == reply.result
    # the server was busy for wakeup + per-op dispatch at minimum
    assert router.busy_until[0] >= 5.0 + router.wakeup_ns + 6 * router.dispatch_ns


def test_batch_flush_amortizes_wakeup():
    probe = make_serving_table()
    items = shard0_items(probe, 8, seed=3)

    def service_of(batch_max: int) -> float:
        table = make_serving_table()
        prefill(table, items)
        router = Router(table, RDMA_DC, batch_max=batch_max)
        total = 0.0
        for req in queries(table, items):
            event = router.enqueue(0, req)
            if event is not None and event[0] == "flush":
                before = router.busy_until[0]
                router.flush(0, req.enqueue_ns)
                total += router.busy_until[0] - before
        return total

    # one flush of 8 pays the doorbell wakeup once; 8 flushes of 1 pay
    # it 8 times — the whole reason batching lifts saturated throughput
    assert service_of(8) < service_of(1) - 6 * RDMA_DC.hop_ns


def test_timer_flush_drains_partial_batch():
    table = make_serving_table()
    items = shard0_items(table, 2, seed=4)
    prefill(table, items)
    router = Router(table, RDMA_DC, batch_max=8, batch_wait_ns=100.0)
    event = router.enqueue(0, queries(table, items[:1])[0])
    assert event == ("timer", 100.0, 0)
    assert router.timer_valid(0, 0)
    replies, followup = router.flush(0, 100.0)
    assert len(replies) == 1 and followup is None
    assert router.flushes == 1 and router.batched_ops == 1


# ----------------------------------------------------------------------
# driver determinism


def serve_hot(seed: int, *, location_cache: bool = True, timeline=None):
    table = make_serving_table()
    items = random_items(16, seed=6)
    shadow = prefill(table, items)
    streams = hot_streams(items, per_reader=24, readers=3)
    result = run_serving(
        table,
        streams,
        net=RDMA_DC,
        batch_max=4,
        location_cache=location_cache,
        seed=seed,
        shadow=shadow,
        timeline=timeline,
    )
    return table, result


def test_same_seed_same_run():
    runs = []
    for _ in range(2):
        timeline = WindowSeries(1000.0)
        table, result = serve_hot(9, timeline=timeline)
        assert result.ok, result.check_failures
        runs.append(
            (
                commit_signature(result),
                result.span_ns,
                table_digest(table),
                timeline.as_dict(),
            )
        )
    assert runs[0] == runs[1]


def test_different_seed_different_schedule_still_correct():
    signatures = []
    for seed in (9, 10):
        _, result = serve_hot(seed)
        assert result.ok, result.check_failures
        signatures.append(commit_signature(result))
    assert signatures[0] != signatures[1]


def test_cache_ablation_same_final_state():
    digests = []
    for location_cache in (False, True):
        table, result = serve_hot(9, location_cache=location_cache)
        assert result.ok, result.check_failures
        if location_cache:
            assert result.one_sided_reads > 0
        else:
            assert result.one_sided_reads == 0
            assert result.hint_misses == 0
        digests.append(table_digest(table))
    # hints change who answers a query, never what the table holds
    assert digests[0] == digests[1]


def test_empty_streams_rejected():
    table = make_serving_table()
    with pytest.raises(ValueError):
        run_serving(table, [], net=RDMA_DC)


# ----------------------------------------------------------------------
# location-cache staleness protocol


def test_stale_hints_repaired_never_wrong():
    table = make_serving_table(cells=512, segment_cells=32)
    items = random_items(464, seed=7)
    hot, fresh = items[:24], items[24:]
    shadow = prefill(table, hot)
    # readers hammer the hot set (hints get reused) while the writer's
    # inserts split segments out from under them (hints go stale)
    streams = hot_streams(hot, per_reader=800, readers=2)
    inserts = [ClientOp("insert", k, v) for k, v in fresh]
    streams.append(inserts[0::2])
    streams.append(inserts[1::2])
    result = run_serving(
        table, streams, net=RDMA_DC, batch_max=4, seed=11, shadow=shadow
    )
    assert result.ok, result.check_failures
    assert table.splits > 0, "no segment split — the scenario is inert"
    assert result.one_sided_reads > 0
    assert result.hint_misses >= 1, "no hint ever went stale"
    assert result.wrong_answers == 0
    # repaired queries re-routed and still answered from the shadow
    assert any(r.retried for r in result.committed)


def test_shadow_oracle_detects_corruption():
    table = make_serving_table()
    items = random_items(8, seed=8)
    shadow = prefill(table, items)
    bogus = b"\xff" * 8
    shadow[bogus] = b"\xee" * 8
    result = run_serving(
        table,
        [[ClientOp("query", bogus)]],
        net=RDMA_DC,
        seed=1,
        shadow=shadow,
    )
    assert not result.ok
    assert result.check_failures


# ----------------------------------------------------------------------
# engine integration

TINY_SERVE = ServingSpec(
    total_cells=1 << 10, n_clients=4, n_ops=96, segment_cells=64, seed=7
)


def test_serving_spec_round_trip():
    assert ServingSpec.from_dict(TINY_SERVE.to_dict()) == TINY_SERVE
    assert TINY_SERVE.label == "4c b8 +loc"
    assert TINY_SERVE.replace(location_cache=False, batch_max=1).label == "4c b1"


def test_executor_repeatable():
    a = run_serving_spec(TINY_SERVE)
    b = run_serving_spec(TINY_SERVE)
    assert a == b
    assert a["wrong_answers"] == 0 and not a["check_failures"]
    assert a["table_digest"] == b["table_digest"]
    assert a["throughput_kops"] > 0


def test_engine_byte_identity_across_jobs(tmp_path):
    specs = [TINY_SERVE, TINY_SERVE.replace(location_cache=False)]
    serial = Engine(jobs=1, cache=False).run(specs)
    parallel = Engine(jobs=2, cache=ResultCache(tmp_path / "cache")).run(specs)
    assert serial == parallel
