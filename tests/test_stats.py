"""Unit tests for repro.nvm.stats."""

import pytest

from repro.nvm.stats import MemStats


def test_fresh_stats_are_zero():
    stats = MemStats()
    assert stats.reads == 0
    assert stats.writes == 0
    assert stats.sim_time_ns == 0.0
    assert stats.accesses == 0


def test_snapshot_is_independent_copy():
    stats = MemStats()
    snap = stats.snapshot()
    stats.reads += 5
    stats.sim_time_ns += 10.0
    assert snap.reads == 0
    assert snap.sim_time_ns == 0.0


def test_delta_subtracts_every_field():
    stats = MemStats()
    stats.reads = 10
    stats.flushes = 4
    stats.sim_time_ns = 100.0
    earlier = stats.snapshot()
    stats.reads = 17
    stats.flushes = 9
    stats.sim_time_ns = 250.0
    delta = stats.delta(earlier)
    assert delta.reads == 7
    assert delta.flushes == 5
    assert delta.sim_time_ns == 150.0


def test_merged_adds_every_field():
    a = MemStats(reads=3, writes=2, sim_time_ns=1.5)
    b = MemStats(reads=4, writes=5, sim_time_ns=2.5)
    merged = a.merged(b)
    assert merged.reads == 7
    assert merged.writes == 7
    assert merged.sim_time_ns == 4.0
    # inputs untouched
    assert a.reads == 3 and b.reads == 4


def test_miss_ratio():
    stats = MemStats(cache_hits=3, cache_misses=1)
    assert stats.miss_ratio == pytest.approx(0.25)


def test_miss_ratio_idle_is_zero():
    assert MemStats().miss_ratio == 0.0


def test_accesses_sums_reads_and_writes():
    assert MemStats(reads=2, writes=3).accesses == 5


def test_reset_zeroes_in_place():
    stats = MemStats(reads=5, sim_time_ns=9.0)
    stats.reset()
    assert stats.reads == 0
    assert stats.sim_time_ns == 0.0


def test_as_dict_roundtrip():
    stats = MemStats(reads=1, flushes=2)
    d = stats.as_dict()
    assert d["reads"] == 1
    assert d["flushes"] == 2
    assert set(d) >= {"reads", "writes", "cache_misses", "sim_time_ns"}


def test_as_dict_counters_are_exact_ints():
    # the contract fix: every event counter is an exact int, only
    # sim_time_ns is a float
    stats = MemStats(reads=3, writes=2, cache_misses=7, sim_time_ns=1.5)
    d = stats.as_dict()
    for name, value in d.items():
        if name == "sim_time_ns":
            assert isinstance(value, float)
        else:
            assert isinstance(value, int) and not isinstance(value, bool)


def test_from_dict_inverts_as_dict():
    stats = MemStats(reads=9, flushes=4, nvm_bytes_written=640, sim_time_ns=2.25)
    rebuilt = MemStats.from_dict(stats.as_dict())
    assert rebuilt == stats
    # unknown keys ignored, missing default to zero
    assert MemStats.from_dict({"reads": 2, "bogus": 5}).reads == 2


def test_as_dict_roundtrip_through_snapshot_delta_merged():
    # the satellite regression: dict round-trips commute with the
    # snapshot/delta/merged algebra, exactly
    a = MemStats(reads=10, writes=4, flushes=2, sim_time_ns=100.5)
    earlier = a.snapshot()
    a.reads, a.flushes, a.sim_time_ns = 17, 9, 250.75
    delta = a.delta(earlier)
    merged = delta.merged(earlier)
    for stats in (earlier, delta, merged):
        assert MemStats.from_dict(stats.as_dict()) == stats
    assert MemStats.from_dict(delta.as_dict()).merged(
        MemStats.from_dict(earlier.as_dict())
    ) == merged


def test_merged_all():
    parts = [MemStats(reads=i, sim_time_ns=float(i)) for i in (1, 2, 3)]
    total = MemStats.merged_all(parts)
    assert total.reads == 6
    assert total.sim_time_ns == 6.0
    assert MemStats.merged_all([]) == MemStats()
