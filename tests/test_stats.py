"""Unit tests for repro.nvm.stats."""

import pytest

from repro.nvm.stats import MemStats


def test_fresh_stats_are_zero():
    stats = MemStats()
    assert stats.reads == 0
    assert stats.writes == 0
    assert stats.sim_time_ns == 0.0
    assert stats.accesses == 0


def test_snapshot_is_independent_copy():
    stats = MemStats()
    snap = stats.snapshot()
    stats.reads += 5
    stats.sim_time_ns += 10.0
    assert snap.reads == 0
    assert snap.sim_time_ns == 0.0


def test_delta_subtracts_every_field():
    stats = MemStats()
    stats.reads = 10
    stats.flushes = 4
    stats.sim_time_ns = 100.0
    earlier = stats.snapshot()
    stats.reads = 17
    stats.flushes = 9
    stats.sim_time_ns = 250.0
    delta = stats.delta(earlier)
    assert delta.reads == 7
    assert delta.flushes == 5
    assert delta.sim_time_ns == 150.0


def test_merged_adds_every_field():
    a = MemStats(reads=3, writes=2, sim_time_ns=1.5)
    b = MemStats(reads=4, writes=5, sim_time_ns=2.5)
    merged = a.merged(b)
    assert merged.reads == 7
    assert merged.writes == 7
    assert merged.sim_time_ns == 4.0
    # inputs untouched
    assert a.reads == 3 and b.reads == 4


def test_miss_ratio():
    stats = MemStats(cache_hits=3, cache_misses=1)
    assert stats.miss_ratio == pytest.approx(0.25)


def test_miss_ratio_idle_is_zero():
    assert MemStats().miss_ratio == 0.0


def test_accesses_sums_reads_and_writes():
    assert MemStats(reads=2, writes=3).accesses == 5


def test_reset_zeroes_in_place():
    stats = MemStats(reads=5, sim_time_ns=9.0)
    stats.reset()
    assert stats.reads == 0
    assert stats.sim_time_ns == 0.0


def test_as_dict_roundtrip():
    stats = MemStats(reads=1, flushes=2)
    d = stats.as_dict()
    assert d["reads"] == 1
    assert d["flushes"] == 2
    assert set(d) >= {"reads", "writes", "cache_misses", "sim_time_ns"}
