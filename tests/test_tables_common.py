"""Behavioural tests that every hashing scheme must pass.

Parametrized over all six schemes (and the logged variants where
applicable): basic CRUD semantics, count/load-factor accounting, the
persistence discipline, and recovery-from-clean-shutdown invariants.
"""

import pytest

from tests.conftest import (
    ALL_SCHEMES,
    LOGGABLE_SCHEMES,
    make_table,
    random_items,
    small_region,
)



@pytest.fixture(params=ALL_SCHEMES)
def scheme(request):
    return request.param


def build(scheme, logged=False):
    region = small_region()
    table = make_table(scheme, region, logged=logged)
    return region, table


def test_empty_table_state(scheme):
    _, table = build(scheme)
    assert table.count == 0
    assert table.load_factor == 0.0
    assert table.capacity > 0
    assert table.query(b"\x01" * 8) is None
    assert not table.delete(b"\x01" * 8)


def test_insert_then_query(scheme):
    _, table = build(scheme)
    key, value = b"k" * 8, b"v" * 8
    assert table.insert(key, value)
    assert table.query(key) == value
    assert table.count == 1


def test_insert_many_query_all(scheme):
    _, table = build(scheme)
    items = random_items(200, seed=1)
    accepted = [(k, v) for k, v in items if table.insert(k, v)]
    # two-choice legitimately rejects early (the paper's exclusion
    # reason) and classic cuckoo may hit a rare eviction cycle near 0.4
    # load; everyone else must take all 200 into 512 cells
    minimum = {"two-choice": 30, "cuckoo": 150}.get(scheme, 200)
    assert len(accepted) >= minimum
    for k, v in accepted:
        assert table.query(k) == v
    assert table.count == len(accepted)


def test_delete_removes_only_target(scheme):
    _, table = build(scheme)
    items = [(k, v) for k, v in random_items(100, seed=2) if table.insert(k, v)]
    assert len(items) >= 30  # two-choice may reject some
    victims, keepers = items[: len(items) // 2], items[len(items) // 2 :]
    for k, _ in victims:
        assert table.delete(k)
    for k, _ in victims:
        assert table.query(k) is None
    for k, v in keepers:
        assert table.query(k) == v
    assert table.count == len(keepers)


def test_delete_missing_returns_false(scheme):
    _, table = build(scheme)
    table.insert(b"a" * 8, b"v" * 8)
    assert not table.delete(b"b" * 8)
    assert table.count == 1


def test_reinsert_after_delete(scheme):
    _, table = build(scheme)
    key = b"recycled"
    table.insert(key, b"value001")
    table.delete(key)
    assert table.insert(key, b"value002")
    assert table.query(key) == b"value002"


def test_count_is_persistent(scheme):
    region, table = build(scheme)
    for k, v in random_items(20, seed=3):
        table.insert(k, v)
    assert table.persisted_count == 20
    assert table.check_count()


def test_items_inventory_matches(scheme):
    _, table = build(scheme)
    accepted = {
        k: v for k, v in random_items(64, seed=4) if table.insert(k, v)
    }
    assert len(accepted) >= 30  # two-choice may reject some
    assert dict(table.items()) == accepted


def test_load_factor_tracks_count(scheme):
    _, table = build(scheme)
    for i, (k, v) in enumerate(random_items(10, seed=5), start=1):
        table.insert(k, v)
        assert table.load_factor == pytest.approx(i / table.capacity)


def test_no_unpersisted_data_after_op(scheme):
    """Durability discipline: after insert/delete returns, nothing is
    sitting dirty in the cache — a crash at rest loses nothing."""
    region, table = build(scheme)
    items = random_items(30, seed=6)
    for k, v in items:
        table.insert(k, v)
        assert region.unpersisted_ranges() == [], f"{scheme}: dirty after insert"
    for k, _ in items[:10]:
        table.delete(k)
        assert region.unpersisted_ranges() == [], f"{scheme}: dirty after delete"


def test_survives_clean_crash(scheme):
    """Crash at rest (no in-flight op): everything must still be there."""
    region, table = build(scheme)
    items = random_items(50, seed=7)
    for k, v in items:
        table.insert(k, v)
    region.crash()
    table.reattach()
    assert table.count == 50
    for k, v in items:
        assert table.query(k) == v


def test_recover_on_consistent_table_is_noop(scheme):
    region, table = build(scheme)
    items = random_items(40, seed=8)
    for k, v in items:
        table.insert(k, v)
    region.crash()
    table.reattach()
    table.recover()
    assert table.count == 40
    assert table.check_count()
    for k, v in items:
        assert table.query(k) == v


@pytest.mark.parametrize("scheme", LOGGABLE_SCHEMES)
def test_logged_variant_behaves_identically(scheme):
    """The undo log must not change visible semantics, only cost."""
    _, plain = build(scheme, logged=False)
    _, logged = build(scheme, logged=True)
    items = random_items(120, seed=9)
    accepted = []
    for k, v in items:
        ok_plain = plain.insert(k, v)
        assert ok_plain == logged.insert(k, v)
        if ok_plain:
            accepted.append((k, v))
    for k, v in accepted:
        assert plain.query(k) == logged.query(k) == v
    for k, _ in accepted[::2]:
        assert plain.delete(k) == logged.delete(k)
    assert plain.count == logged.count


@pytest.mark.parametrize("scheme", LOGGABLE_SCHEMES)
def test_logged_variant_costs_more_flushes(scheme):
    """Figure 2's mechanism: logging at least doubles flush traffic on
    mutating operations."""
    r_plain, plain = build(scheme, logged=False)
    r_logged, logged = build(scheme, logged=True)
    items = random_items(100, seed=10)
    for k, v in items:
        plain.insert(k, v)
        logged.insert(k, v)
    assert r_logged.stats.flushes > 1.5 * r_plain.stats.flushes


def test_full_table_insert_fails_gracefully(scheme):
    """Inserting into a saturated table returns False, never corrupts."""
    _, table = build(scheme)
    items = iter(random_items(4000, seed=11))
    inserted = {}
    for k, v in items:
        if not table.insert(k, v):
            break
        inserted[k] = v
    else:
        pytest.skip("scheme did not saturate within the item budget")
    assert table.count == len(inserted)
    # table still coherent after the failure
    sample = list(inserted.items())[:50]
    for k, v in sample:
        assert table.query(k) == v
