"""Tests for the wall-clock throughput experiment."""

from __future__ import annotations

from repro.bench.config import SCALES
from repro.bench.experiments.throughput import (
    ThroughputSpec,
    run,
    run_throughput_spec,
    throughput_specs,
)

TINY = ThroughputSpec(total_cells=256, group_size=16, seed=3)


def test_spec_roundtrip():
    spec = ThroughputSpec(scheme="group", backend="sim", batch=64, seed=9)
    assert ThroughputSpec.from_dict(spec.to_dict()) == spec
    assert spec.label == "group/sim b64"
    assert TINY.label == "group/raw"


def test_executor_phase_accounting():
    cell = run_throughput_spec(TINY)
    n = int(256 * TINY.load_factor)
    assert cell["n_items"] == n
    assert cell["inserted"] == cell["fill"]["ops"] == n
    assert cell["hits"] == cell["query"]["ops"] == n  # every key findable
    assert cell["deleted"] == cell["delete"]["ops"] == n // 2
    for phase in ("fill", "query", "delete"):
        assert cell[phase]["wall_ops_per_s"] > 0
        assert cell[phase]["sim_ns_per_op"] == 0.0  # raw backend: no model
    assert cell["fill"]["flushes"] > 0


def test_batch_and_scalar_cells_agree_on_everything_but_time():
    """Same spec modulo batch size → same logical outcome, fewer
    flushes/fences; only the wall-clock numbers may differ."""
    scalar = run_throughput_spec(TINY)
    from dataclasses import replace

    batched = run_throughput_spec(replace(TINY, batch=16))
    for field in ("n_items", "inserted", "hits", "deleted"):
        assert batched[field] == scalar[field]
    assert batched["fill"]["flushes"] < scalar["fill"]["flushes"]
    assert batched["fill"]["fences"] < scalar["fill"]["fences"]
    assert batched["delete"]["fences"] < scalar["delete"]["fences"]


def test_sim_cells_report_simulated_latency():
    from dataclasses import replace

    cell = run_throughput_spec(replace(TINY, backend="sim"))
    assert cell["fill"]["sim_ns_per_op"] > 0
    assert cell["query"]["sim_ns_per_op"] > 0


def test_grid_shape():
    specs = throughput_specs(SCALES["tiny"], seed=42)
    assert len(specs) == len(set(specs)) == 8
    schemes = {(s.scheme, s.backend, s.batch) for s in specs}
    assert ("group", "raw", 0) in schemes and ("group", "raw", 512) in schemes
    assert ("linear", "sim", 0) in schemes
    # batch cells only exist for the scheme with a batch API
    assert all(s.scheme == "group" for s in specs if s.batch)


def test_run_renders_report_and_data():
    result = run(SCALES["tiny"], seed=42)
    assert result.name == "throughput"
    assert "fill_ops_s" in result.text
    assert len(result.data["cells"]) == 8
    cell = result.data["cells"][0]
    assert cell["spec"]["scheme"] == "group"
    assert {"fill", "query", "delete"} <= set(cell)
