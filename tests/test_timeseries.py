"""Windowed telemetry tests: series, sampler, recorder, health, timeline.

The two contracts under test:

1. **Series semantics** — window math, channel-kind binding, exact
   merge/rebucket, JSON round-trips, Chrome counter export.
2. **Observation transparency** — a :class:`~repro.obs.WindowSampler`
   and :class:`~repro.obs.FlightRecorder` attached to a live region
   leave the simulated event counts byte-identical across all five
   paper table families (the pin for DESIGN.md decision 15).
"""

from __future__ import annotations

import json

import pytest

from tests.conftest import make_table, random_items, small_region

from repro.bench.config import SCALES
from repro.bench.experiments.timeline import (
    SLO_RULES,
    TimelineSpec,
    health_values,
    run_timeline_spec,
    timeline_specs,
)
from repro.bench.report import format_sparkline
from repro.obs import (
    FlightRecorder,
    HealthReport,
    SloRule,
    WindowSampler,
    WindowSeries,
    evaluate,
)

# ----------------------------------------------------------------------
# WindowSeries semantics


def test_series_counters_fill_missing_windows():
    s = WindowSeries(10_000.0)
    s.inc("ops", 0.0)
    s.inc("ops", 5_000.0, 2)
    s.inc("ops", 25_000.0)
    assert s.windows() == [0, 2]
    assert s.counter_values("ops", [0, 1, 2]) == [3, 0, 1]


def test_series_channel_kind_conflict_raises():
    s = WindowSeries(1_000.0)
    s.inc("x", 0.0)
    with pytest.raises(ValueError, match="already recorded"):
        s.observe("x", 0.0, 5)


def test_series_gauges_carry_forward():
    s = WindowSeries(1_000.0)
    s.set_gauge("occupancy", 0.0, 0.25)
    s.set_gauge("occupancy", 500.0, 0.5)  # same window: last write wins
    s.inc("ops", 2_500.0)
    assert s.gauge_values("occupancy", [0, 1, 2]) == [0.5, 0.5, 0.5]


def test_series_quantiles_and_heat_views():
    s = WindowSeries(1_000.0)
    for v in (1, 2, 3, 100):
        s.observe("latency", 100.0, v)
    s.observe("latency", 1_500.0, 7)
    q = s.quantile_values("latency", 0.99, [0, 1, 2])
    assert q[0] >= 100 and q[1] >= 7 and q[2] == 0.0
    s.touch("wear_heat", 100.0, 42, 3)
    s.touch("wear_heat", 1_500.0, 42)
    assert s.heat_totals("wear_heat", [0, 1]) == [3, 1]
    assert s.merged_heat("wear_heat").cells == {42: 4}


def test_series_record_event_routes_kinds():
    s = WindowSeries(1_000.0)
    for kind in ("write", "write", "flush", "fence"):
        s.record_event(kind, 0.0)
    assert s.counter_values("writes", [0]) == [2]
    assert s.counter_values("flushes", [0]) == [1]
    assert s.counter_values("fences", [0]) == [1]


def test_series_merge_adds_and_rejects_mismatched_windows():
    a, b = WindowSeries(1_000.0), WindowSeries(1_000.0)
    a.inc("ops", 0.0, 2)
    b.inc("ops", 0.0, 3)
    a.set_gauge("occupancy", 0.0, 0.7)
    b.set_gauge("occupancy", 0.0, 0.4)
    a.observe("latency", 0.0, 5)
    b.observe("latency", 0.0, 9)
    a.merge(b)
    assert a.counter_values("ops", [0]) == [5]
    assert a.gauge_values("occupancy", [0]) == [0.7]  # max wins
    with pytest.raises(ValueError):
        a.merge(WindowSeries(2_000.0))


def test_series_rebucket_is_exact():
    s = WindowSeries(1_000.0)
    for w in range(10):
        s.inc("ops", w * 1_000.0, w + 1)
        s.observe("latency", w * 1_000.0, 1 if w != 7 else 1_000)
    coarse = s.rebucketed(5)
    assert coarse.window_ns == 5_000.0
    assert coarse.counter_values("ops", [0, 1]) == [15, 40]
    # the spike stays visible in its coarse window's quantile
    assert coarse.quantile_values("latency", 1.0, [0, 1])[1] >= 1_000
    with pytest.raises(ValueError):
        s.rebucketed(0)


def test_series_json_roundtrip():
    s = WindowSeries(2_000.0)
    s.inc("ops", 0.0)
    s.observe("latency", 100.0, 3)
    s.set_gauge("occupancy", 4_100.0, 0.5)
    s.touch("wear_heat", 4_100.0, 7)
    payload = s.as_dict()
    json.dumps(payload)  # JSON-safe end to end
    rebuilt = WindowSeries.from_dict(payload)
    assert rebuilt.as_dict() == payload
    assert rebuilt.channels() == s.channels()


def test_series_chrome_counter_events():
    s = WindowSeries(1_000.0)
    s.inc("ops", 0.0, 4)
    s.observe("latency", 1_500.0, 33)
    events = s.chrome_counter_events(pid=7)
    assert all(ev["ph"] == "C" and ev["pid"] == 7 for ev in events)
    names = {ev["name"] for ev in events}
    assert "ops" in names and "latency.p99" in names
    ops_ts = [ev["ts"] for ev in events if ev["name"] == "ops"]
    assert ops_ts[0] == 0.0  # ts is in microseconds of window start


# ----------------------------------------------------------------------
# FlightRecorder


def test_flight_recorder_rings_are_bounded():
    rec = FlightRecorder(capacity=4, event_capacity=8)
    for i in range(10):
        rec.record_op(0, index=i, kind="insert")
    for i in range(20):
        rec.record_event(index=i, kind="write")
    dump = rec.dump()
    assert rec.ops_seen == 10 and rec.events_seen == 20
    assert [op["index"] for op in dump["ops"]["0"]] == [6, 7, 8, 9]
    assert len(dump["events"]) == 8
    json.dumps(dump)


# ----------------------------------------------------------------------
# health rules


def test_slo_rule_validation_and_status():
    with pytest.raises(ValueError):
        SloRule("x", warn=1.0, fail=2.0, direction="sideways")
    with pytest.raises(ValueError):
        SloRule("x", warn=2.0, fail=1.0)  # fail below warn ("above")
    with pytest.raises(ValueError):
        SloRule("x", warn=1.0, fail=2.0, direction="below")
    rule = SloRule("p99", warn=100.0, fail=200.0)
    assert rule.status_of(50.0) == "pass"
    assert rule.status_of(150.0) == "warn"
    assert rule.status_of(200.0) == "fail"
    assert rule.status_of(None) == "warn"  # missing metric is visible
    floor = SloRule("kops", warn=10.0, fail=5.0, direction="below")
    assert floor.status_of(20.0) == "pass"
    assert floor.status_of(7.0) == "warn"
    assert floor.status_of(5.0) == "fail"


def test_evaluate_reports_worst_status_and_roundtrips():
    rules = [
        SloRule("a", warn=1.0, fail=2.0),
        SloRule("b", warn=1.0, fail=2.0),
    ]
    report = evaluate(rules, {"a": 0.5, "b": 5.0})
    assert report.status == "fail"
    assert [c.metric for c in report.failing()] == ["b"]
    rebuilt = HealthReport.from_dict(report.as_dict())
    assert rebuilt.as_dict() == report.as_dict()
    assert evaluate([], {}).status == "pass"


# ----------------------------------------------------------------------
# sparkline rendering


def test_sparkline_downsamples_by_bucket_max():
    values = [1.0] * 100
    values[63] = 50.0
    line = format_sparkline("p99", values, width=10)
    assert "█" in line and "[1..50]" in line
    assert format_sparkline("x", []).endswith("(no samples)")
    flat = format_sparkline("flat", [3, 3, 3])
    assert "▁▁▁" in flat


# ----------------------------------------------------------------------
# the timeline experiment itself


def test_timeline_grid_covers_growth_and_client_ramp():
    specs = timeline_specs(SCALES["tiny"], seed=42)
    kinds = [(s.kind, s.n_clients) for s in specs]
    assert ("growth", 1) in kinds
    assert [n for k, n in kinds if k == "contention"] == [1, 4, 16]


def test_timeline_growth_cell_shows_split_spike():
    spec = TimelineSpec(
        kind="growth",
        initial_cells=256,
        segment_cells=32,
        n_ops=200,
        seed=13,
    )
    cell = run_timeline_spec(spec)
    assert cell["splits"] > 0
    assert cell["split_window_p99_ns"] > cell["steady_window_p99_ns"] > 0
    assert cell["split_spike_ratio"] > 1.0
    assert cell["wear"] is not None and cell["wear"]["lines_touched"] > 0
    series = WindowSeries.from_dict(cell["series"])
    assert len(series.windows()) <= spec.max_windows
    assert sum(series.counter_values("splits")) == cell["splits"]
    json.dumps(cell)


def test_timeline_contention_cell_reports_aborts_and_health_inputs():
    spec = TimelineSpec(
        kind="contention",
        n_clients=4,
        total_cells=1 << 10,
        group_size=16,
        n_ops=120,
        seed=13,
    )
    cell = run_timeline_spec(spec)
    assert cell["committed"] > 0 and cell["total"]["p99"] > 0
    assert cell["lost_updates"] == 0 and cell["check_failures"] == []
    series = WindowSeries.from_dict(cell["series"])
    assert sum(series.counter_values("writes")) > 0
    values = health_values([cell])
    assert values["contention.p99_ns"] == cell["total"]["p99"]
    report = evaluate(SLO_RULES, values)
    assert report.status in ("pass", "warn")  # growth metrics missing → warn
    with pytest.raises(ValueError):
        run_timeline_spec(TimelineSpec(kind="nonsense"))


# ----------------------------------------------------------------------
# DESIGN decision 15 pin: observation never moves a simulated event


@pytest.mark.parametrize("scheme", ["group", "linear", "linear-L", "pfht", "path"])
def test_sampler_and_recorder_are_simulation_invariant(scheme):
    logged = scheme.endswith("-L")
    base = scheme[:-2] if logged else scheme

    def drive(observe: bool):
        region = small_region()
        table = make_table(base, region, logged=logged)
        series = WindowSeries(1_000.0)
        sampler = WindowSampler(series)
        recorder = FlightRecorder(capacity=8)
        if observe:
            sampler.attach(region)
        items = random_items(80, seed=13)
        for i, (key, value) in enumerate(items):
            assert table.insert(key, value)
            if observe:
                recorder.record_op(0, index=i, kind="insert")
        for key, value in items[:40]:
            assert table.query(key) == value
        for key, _ in items[:10]:
            assert table.delete(key)
        if observe:
            sampler.detach()
            assert region.event_hook is None
        return region.stats.as_dict(), series

    bare, _ = drive(False)
    observed, series = drive(True)
    assert bare == observed  # byte-identical simulated event counts
    assert sum(series.counter_values("writes")) > 0
