"""Tests for trace file I/O (real-dataset plumbing)."""

import gzip

import pytest

from repro.traces import BagOfWordsTrace, FingerprintTrace
from repro.traces.io import (
    load_docword,
    load_fingerprints,
    save_docword,
    save_fingerprints,
)


def test_docword_roundtrip(tmp_path):
    original = BagOfWordsTrace(seed=1).items(500)
    path = tmp_path / "docword.test.txt"
    save_docword(path, original)
    trace = load_docword(path)
    assert trace.items(500) == original
    assert trace.spec.item_size == 16
    assert len(trace) == 500


def test_docword_gzip(tmp_path):
    original = BagOfWordsTrace(seed=2).items(100)
    plain = tmp_path / "docword.test.txt"
    save_docword(plain, original)
    gz = tmp_path / "docword.test.txt.gz"
    gz.write_bytes(gzip.compress(plain.read_bytes()))
    assert load_docword(gz).items(100) == original


def test_docword_limit(tmp_path):
    original = BagOfWordsTrace(seed=3).items(200)
    path = tmp_path / "docword.test.txt"
    save_docword(path, original)
    trace = load_docword(path, limit=50)
    assert len(trace) == 50


def test_docword_validates_header(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("not-a-number\n")
    with pytest.raises(ValueError, match="bad header"):
        load_docword(path)


def test_docword_validates_row_count(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("5\n5\n3\n1 1 1\n")  # declares 3 rows, has 1
    with pytest.raises(ValueError, match="declares 3 rows"):
        load_docword(path)


def test_docword_validates_ranges(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("5\n5\n1\n9 1 1\n")  # doc 9 > declared 5
    with pytest.raises(ValueError, match="out of declared range"):
        load_docword(path)


def test_fingerprints_roundtrip(tmp_path):
    original = FingerprintTrace(seed=1).items(300)
    path = tmp_path / "prints.txt"
    save_fingerprints(path, original)
    trace = load_fingerprints(path)
    assert trace.items(300) == original
    assert trace.spec.item_size == 32


def test_fingerprints_digest_only(tmp_path):
    path = tmp_path / "prints.txt"
    path.write_text("00112233445566778899aabbccddeeff\n")
    trace = load_fingerprints(path)
    key, value = trace.items(1)[0]
    assert key == bytes.fromhex("00112233445566778899aabbccddeeff")
    assert value == bytes(16)


def test_fingerprints_validate_hex(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("zz112233445566778899aabbccddeeff\n")
    with pytest.raises(ValueError, match="bad hex"):
        load_fingerprints(path)
    path.write_text("0011\n")
    with pytest.raises(ValueError, match="32 hex chars"):
        load_fingerprints(path)


def test_file_trace_drives_a_table(tmp_path):
    """End-to-end: a loaded trace file fills a hash table."""
    from repro import GroupHashTable, NVMRegion

    path = tmp_path / "prints.txt"
    save_fingerprints(path, FingerprintTrace(seed=4).items(200))
    trace = load_fingerprints(path)
    region = NVMRegion(4 << 20)
    table = GroupHashTable(region, 1024, trace.spec, group_size=32)
    for k, v in trace.items(200):
        assert table.insert(k, v)
    assert table.count == 200


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_text("")
    with pytest.raises(ValueError):
        load_fingerprints(path)
