"""Tests for the workload traces (Section 4.1 equivalents)."""

from collections import Counter

import pytest

from repro.traces import (
    TRACES,
    BagOfWordsTrace,
    FingerprintTrace,
    RandomNumTrace,
)
from repro.traces.random_num import value_for_key


def test_registry_names_match_paper():
    assert set(TRACES) == {"randomnum", "bagofwords", "fingerprint"}
    for name, cls in TRACES.items():
        assert cls(0).name == name


# ------------------------------------------------------------ randomnum


def test_randomnum_item_size_is_16_bytes():
    trace = RandomNumTrace(0)
    assert trace.spec.item_size == 16
    key, value = trace.items(1)[0]
    assert len(key) == 8 and len(value) == 8


def test_randomnum_keys_within_key_space():
    trace = RandomNumTrace(0, key_space=1 << 26)
    for key, _ in trace.items(500):
        assert int.from_bytes(key, "little") < (1 << 26)


def test_randomnum_values_recomputable():
    trace = RandomNumTrace(3)
    for key, value in trace.items(100):
        assert value == value_for_key(key)


def test_randomnum_deterministic_per_seed():
    assert RandomNumTrace(5).items(50) == RandomNumTrace(5).items(50)
    assert RandomNumTrace(5).items(50) != RandomNumTrace(6).items(50)


def test_randomnum_rejects_bad_key_space():
    with pytest.raises(ValueError):
        RandomNumTrace(0, key_space=0)


# ---------------------------------------------------------- bagofwords


def test_bagofwords_item_size_is_16_bytes():
    trace = BagOfWordsTrace(0)
    assert trace.spec.item_size == 16


def test_bagofwords_key_structure():
    """Keys are (DocID u32, WordID u32); doc ids grow, word ids are
    1-based within the vocabulary, matching the UCI docword format."""
    trace = BagOfWordsTrace(0, vocab=1000)
    last_doc = 0
    for key, _ in trace.items(300):
        doc = int.from_bytes(key[:4], "little")
        word = int.from_bytes(key[4:], "little")
        assert doc >= last_doc
        last_doc = max(last_doc, doc)
        assert 1 <= word <= 1000
    assert last_doc > 1  # spans multiple documents


def test_bagofwords_word_distribution_is_skewed():
    """Zipfian words: the most common word id dwarfs the median."""
    trace = BagOfWordsTrace(0)
    words = [int.from_bytes(k[4:], "little") for k, _ in trace.items(3000)]
    counts = Counter(words)
    most_common = counts.most_common(1)[0][1]
    assert most_common > 20  # word 0 ("the") appears in most documents


def test_bagofwords_counts_are_positive():
    for _, value in BagOfWordsTrace(1).items(100):
        assert int.from_bytes(value, "little") >= 1


def test_bagofwords_validation():
    with pytest.raises(ValueError):
        BagOfWordsTrace(0, vocab=1)
    with pytest.raises(ValueError):
        BagOfWordsTrace(0, zipf_s=1.0)
    with pytest.raises(ValueError):
        BagOfWordsTrace(0, words_per_doc=0)


# ---------------------------------------------------------- fingerprint


def test_fingerprint_item_size_is_32_bytes():
    trace = FingerprintTrace(0)
    assert trace.spec.item_size == 32
    key, value = trace.items(1)[0]
    assert len(key) == 16 and len(value) == 16


def test_fingerprint_keys_are_md5_uniform():
    """MD5 digests: all 256 byte values appear across a modest sample."""
    trace = FingerprintTrace(0)
    seen = set()
    for key, _ in trace.items(300):
        seen.update(key)
    assert len(seen) > 200


def test_fingerprint_duplicates_filtered():
    trace = FingerprintTrace(0, duplicate_rate=0.8)
    keys = trace.keys(200)
    assert len(set(keys)) == 200


def test_fingerprint_validation():
    with pytest.raises(ValueError):
        FingerprintTrace(0, duplicate_rate=1.0)


# --------------------------------------------------------------- shared


@pytest.mark.parametrize("name", sorted(TRACES))
def test_unique_items_never_repeat(name):
    trace = TRACES[name](0)
    keys = trace.keys(2000)
    assert len(set(keys)) == 2000


@pytest.mark.parametrize("name", sorted(TRACES))
def test_items_prefix_stability(name):
    """items(n) must be a prefix of items(m) for n < m (the harness
    relies on stream restartability)."""
    trace_a = TRACES[name](0)
    trace_b = TRACES[name](0)
    assert trace_b.items(500)[:100] == trace_a.items(100)
