"""Scheme-specific tests for 2-choice hashing (the exclusion case)."""


from tests.conftest import random_items, small_region

from repro import TwoChoiceTable


def build(n_cells=256, seed=1):
    region = small_region()
    return region, TwoChoiceTable(region, n_cells, seed=seed)


def test_item_lands_in_one_of_two_cells():
    region, table = build()
    key = b"\x2A" * 8
    c1, c2 = table._candidates(key)
    table.insert(key, b"v" * 8)
    homes = {
        i
        for i in (c1, c2)
        if table.codec.is_occupied(region, table.codec.addr(table._base, i))
    }
    assert homes  # occupied at least one of its candidates
    assert table.query(key) == b"v" * 8


def test_insert_fails_when_both_candidates_taken():
    region, table = build(n_cells=64)
    victim = b"\x2B" * 8
    c1, c2 = table._candidates(victim)
    # occupy both candidate cells directly
    for idx in {c1, c2}:
        addr = table.codec.addr(table._base, idx)
        table.codec.write_kv(region, addr, b"\xEE" * 8, b"\xEE" * 8)
        table.codec.set_occupied(region, addr, True)
    assert not table.insert(victim, b"v" * 8)


def test_no_displacement_ever():
    """2-choice never moves existing items: inserts write ≤ 3 cells'
    worth of stores (kv + header + count)."""
    region, table = build()
    for k, v in random_items(100, seed=2):
        before = region.stats.writes
        table.insert(k, v)
        assert region.stats.writes - before <= 3


def test_saturates_early():
    """The paper's exclusion reason, quantified: first failure arrives
    at a tiny load factor compared to every other scheme."""
    _, table = build(n_cells=1024)
    for k, v in random_items(2000, seed=3):
        if not table.insert(k, v):
            break
    assert table.load_factor < 0.35


def test_degenerate_equal_candidates_handled():
    """Keys whose two hashes pick the same cell must still work."""
    _, table = build(n_cells=8)  # tiny table → collisions guaranteed
    accepted = [k for k, v in random_items(30, seed=4) if table.insert(k, v)]
    for k in accepted:
        assert table.query(k) is not None
    assert table.count == len(accepted)
