"""Tests for the in-place update extension."""

import pytest

from tests.conftest import ALL_SCHEMES, make_table, random_items, small_region

from repro.nvm import SimulatedPowerFailure, random_schedule


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_update_changes_value_in_place(scheme):
    region = small_region()
    table = make_table(scheme, region)
    key = b"mutating"
    table.insert(key, b"value-v1")
    count = table.count
    assert table.update(key, b"value-v2")
    assert table.query(key) == b"value-v2"
    assert table.count == count  # not an insert


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_update_missing_returns_false(scheme):
    region = small_region()
    table = make_table(scheme, region)
    assert not table.update(b"nonesuch", b"whatever")


def test_update_validates_value_size():
    region = small_region()
    table = make_table("group", region)
    table.insert(b"mutating", b"value-v1")
    with pytest.raises(ValueError):
        table.update(b"mutating", b"short")


def test_update_is_persistent():
    region = small_region()
    table = make_table("group", region)
    table.insert(b"mutating", b"value-v1")
    table.update(b"mutating", b"value-v2")
    region.crash()
    table.reattach()
    assert table.query(b"mutating") == b"value-v2"


def test_update_does_not_disturb_neighbours():
    region = small_region()
    table = make_table("linear", region)
    items = random_items(50, seed=1)
    for k, v in items:
        table.insert(k, v)
    victim = items[25][0]
    table.update(victim, b"!" * 8)
    for k, v in items:
        expected = b"!" * 8 if k == victim else v
        assert table.query(k) == expected


def test_update_crash_atomic_for_word_values():
    """8-byte values: a crash at any point leaves old or new, never a
    torn mix (single failure-atomicity unit)."""
    old, new = b"AAAAAAAA", b"BBBBBBBB"
    for at in range(1, 6):
        region = small_region()
        table = make_table("group", region)
        table.insert(b"mutating", old)
        region.arm_crash(at)
        try:
            table.update(b"mutating", new)
            region.disarm_crash()
        except SimulatedPowerFailure:
            pass
        region.crash(random_schedule(at))
        table.reattach()
        table.recover()
        assert table.query(b"mutating") in (old, new), f"torn at event {at}"


def test_logged_update_rolls_back_wide_values():
    """16-byte values can tear without a log; with one, the pre-image
    must be restorable."""
    from repro import ItemSpec, LinearProbingTable, UndoLog

    region = small_region()
    log = UndoLog(region, record_size=64, capacity=64)
    table = LinearProbingTable(region, 64, ItemSpec(8, 16), log=log)
    table.insert(b"mutating", b"OLD-OLD-OLD-OLD-")
    region.arm_crash(3)  # mid-update, after the log record persisted
    try:
        table.update(b"mutating", b"NEW-NEW-NEW-NEW-")
        region.disarm_crash()
    except SimulatedPowerFailure:
        pass
    region.crash(random_schedule(99))
    table.reattach()
    if table.log.needs_recovery():
        table.recover()
    assert table.query(b"mutating") in (b"OLD-OLD-OLD-OLD-", b"NEW-NEW-NEW-NEW-")
