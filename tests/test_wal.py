"""Unit tests for the undo log (the -L consistency layer)."""

import pytest

from repro.nvm import NVMRegion
from repro.tables.wal import LogFullError, UndoLog


def setup(capacity=16, record_size=32):
    r = NVMRegion(1 << 16)
    log = UndoLog(r, record_size=record_size, capacity=capacity)
    return r, log


def test_record_preserves_preimage_for_recovery():
    r, log = setup()
    data_addr = r.alloc(32)
    r.write(data_addr, b"old-old-old-old-")
    r.persist(data_addr, 16)
    log.begin()
    log.record(data_addr, 16)
    r.write(data_addr, b"new-new-new-new-")
    r.persist(data_addr, 16)
    # crash before commit: rollback restores the pre-image
    r.crash()
    log.reattach()
    assert log.needs_recovery()
    log.recover()
    assert r.peek_persistent(data_addr, 16) == b"old-old-old-old-"
    assert not log.needs_recovery()


def test_commit_truncates():
    r, log = setup()
    data_addr = r.alloc(32)
    log.begin()
    log.record(data_addr, 8)
    assert log.pending_entries == 1
    log.commit()
    assert log.pending_entries == 0
    assert not log.needs_recovery()


def test_committed_operation_not_rolled_back():
    r, log = setup()
    data_addr = r.alloc(32)
    log.begin()
    log.record(data_addr, 8)
    r.write(data_addr, b"newvalue")
    r.persist(data_addr, 8)
    log.commit()
    r.crash()
    log.reattach()
    log.recover()  # no-op
    assert r.peek_persistent(data_addr, 8) == b"newvalue"


def test_multi_record_rollback_is_reverse_order():
    """Overlapping records must undo LIFO so the earliest pre-image wins."""
    r, log = setup()
    addr = r.alloc(8)
    r.write(addr, b"AAAAAAAA")
    r.persist(addr, 8)
    log.begin()
    log.record(addr, 8)
    r.write(addr, b"BBBBBBBB")
    r.persist(addr, 8)
    log.record(addr, 8)  # pre-image now B
    r.write(addr, b"CCCCCCCC")
    r.persist(addr, 8)
    r.crash()
    log.reattach()
    log.recover()
    assert r.peek_persistent(addr, 8) == b"AAAAAAAA"


def test_log_entries_are_persisted_before_return():
    """The ordering guarantee: once record() returns, the pre-image and
    tail pointer are in NVM, so a crash at any later point can roll back."""
    r, log = setup()
    addr = r.alloc(8)
    r.write(addr, b"preimage")
    r.persist(addr, 8)
    log.begin()
    log.record(addr, 8)
    # simulate immediate crash: everything record() wrote must be durable
    r.crash()
    log.reattach()
    assert log.needs_recovery()
    log.recover()
    assert r.peek_persistent(addr, 8) == b"preimage"


def test_capacity_enforced():
    r, log = setup(capacity=2)
    addr = r.alloc(32)
    log.begin()
    log.record(addr, 8)
    log.record(addr + 8, 8)
    with pytest.raises(LogFullError):
        log.record(addr + 16, 8)


def test_record_size_enforced():
    r, log = setup(record_size=16)
    addr = r.alloc(64)
    with pytest.raises(ValueError):
        log.record(addr, 32)


def test_begin_rejects_leaked_transaction():
    r, log = setup()
    addr = r.alloc(8)
    log.begin()
    log.record(addr, 8)
    with pytest.raises(RuntimeError):
        log.begin()


def test_commit_on_empty_log_is_noop():
    r, log = setup()
    flushes = r.stats.flushes
    log.commit()
    assert r.stats.flushes == flushes  # nothing written


def test_constructor_validation():
    r = NVMRegion(1 << 16)
    with pytest.raises(ValueError):
        UndoLog(r, record_size=0, capacity=4)
    with pytest.raises(ValueError):
        UndoLog(r, record_size=8, capacity=0)


def test_logging_cost_is_measurable():
    """Each record costs at least two flushes (entry + tail) — the
    mechanism behind the paper's 1.95x observation."""
    r, log = setup()
    addr = r.alloc(8)
    flushes = r.stats.flushes
    log.begin()
    log.record(addr, 8)
    assert r.stats.flushes >= flushes + 2
