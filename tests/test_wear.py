"""Tests for per-line wear tracking (endurance extension)."""

import pytest

from repro import NVMRegion, SimConfig, UndoLog
from repro.nvm import CacheConfig
from repro.nvm.wear import WearMap

CFG = SimConfig(
    cache=CacheConfig(size_bytes=4096, line_size=64, associativity=2),
    track_wear=True,
)


def region(size=1 << 16) -> NVMRegion:
    return NVMRegion(size, CFG)


def test_disabled_by_default():
    assert NVMRegion(4096).wear is None


def test_flush_counts_wear():
    r = region()
    r.write(0, b"x")
    r.persist(0, 1)
    assert r.wear.line_writes(0) == 1
    r.write(0, b"y")
    r.persist(0, 1)
    assert r.wear.line_writes(0) == 2


def test_unflushed_write_causes_no_wear():
    r = region()
    r.write(0, b"x")
    assert r.wear.line_writes(0) == 0


def test_eviction_counts_wear():
    r = region()
    r.write(0, b"x")  # set 0 (32 sets, 2 ways)
    r.read(32 * 64, 1)
    r.read(64 * 64, 1)  # evicts dirty line 0 → writeback → wear
    assert r.wear.line_writes(0) == 1


def test_report_summary():
    r = region()
    for i in range(10):
        r.write(i * 64, b"x")
        r.persist(i * 64, 1)
    for _ in range(9):  # line 0 becomes the hot spot
        r.write(0, b"y")
        r.persist(0, 1)
    report = r.wear.report()
    assert report.total_line_writes == 19
    assert report.lines_touched == 10
    assert report.max_line_writes == 10
    assert report.imbalance > 3
    assert r.wear.hottest(1) == [(0, 10)]


def test_lifetime_fraction():
    wear = WearMap(1024, 64)
    for _ in range(100):
        wear.record(3)
    report = wear.report()
    assert report.lifetime_fraction(1e8) == pytest.approx(1e-6)


def test_reset():
    wear = WearMap(1024, 64)
    wear.record(0)
    wear.reset()
    assert wear.report().total_line_writes == 0


def test_empty_report():
    report = WearMap(1024, 64).report()
    assert report.total_line_writes == 0
    assert report.imbalance == 0.0


def test_validation():
    with pytest.raises(ValueError):
        WearMap(0, 64)


def test_undo_log_concentrates_wear():
    """The endurance story behind the paper's design: an undo log's tail
    pointer line absorbs a write per record — a hot spot group hashing
    simply does not have."""
    from repro import GroupHashTable, LinearProbingTable
    from tests.conftest import random_items

    items = random_items(200, seed=1)

    r_group = NVMRegion(1 << 20, CFG)
    group = GroupHashTable(r_group, 512, group_size=32)
    for k, v in items:
        group.insert(k, v)

    r_logged = NVMRegion(1 << 20, CFG)
    log = UndoLog(r_logged, record_size=32, capacity=2048)
    linear_l = LinearProbingTable(r_logged, 512, log=log)
    for k, v in items:
        linear_l.insert(k, v)

    group_report = r_group.wear.report()
    logged_report = r_logged.wear.report()
    # logging writes more lines overall...
    assert logged_report.total_line_writes > 1.5 * group_report.total_line_writes
    # ...and concentrates ~2x the wear on its hottest line: the log tail
    # takes 2 writes per op vs the count field's 1
    assert logged_report.max_line_writes >= 1.9 * group_report.max_line_writes
