"""Tests for start-gap wear leveling (mapper algebra + region wrapper)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import SMALL_CACHE, random_items

from repro import GroupHashTable, SimConfig
from repro.nvm.wearlevel import StartGapMapper, WearLevelledRegion

CFG = SimConfig(cache=SMALL_CACHE, track_wear=True)


# ----------------------------------------------------------- the mapper


def test_initial_mapping_is_identity():
    mapper = StartGapMapper(8, rotate_every=4)
    assert [mapper.translate(i) for i in range(8)] == list(range(8))


def test_translation_is_always_a_bijection_avoiding_gap():
    mapper = StartGapMapper(8, rotate_every=1)
    for _ in range(50):  # many rotations, incl. several full wraps
        physical = [mapper.translate(i) for i in range(8)]
        assert len(set(physical)) == 8
        assert mapper.gap not in physical
        assert all(0 <= p <= 8 for p in physical)
        mapper.advance_gap()


def test_gap_wrap_advances_start():
    mapper = StartGapMapper(4, rotate_every=1)
    for _ in range(4):
        mapper.advance_gap()
    assert mapper.gap == 0
    mapper.advance_gap()
    assert mapper.gap == 4
    assert mapper.start == 1


def test_note_write_period():
    mapper = StartGapMapper(8, rotate_every=3)
    assert [mapper.note_write() for _ in range(7)] == [
        False, False, True, False, False, True, False,
    ]


def test_every_logical_line_eventually_moves():
    """The whole point: over a full cycle, line 0's physical home
    changes (wear spreads over all N+1 slots)."""
    mapper = StartGapMapper(4, rotate_every=1)
    homes = {mapper.translate(0)}
    for _ in range(25):
        mapper.advance_gap()
        homes.add(mapper.translate(0))
    assert len(homes) >= 4


def test_mapper_validation():
    with pytest.raises(ValueError):
        StartGapMapper(1, 1)
    with pytest.raises(ValueError):
        StartGapMapper(8, 0)
    with pytest.raises(IndexError):
        StartGapMapper(8, 1).translate(8)


# ----------------------------------------------------------- the region


def region(size=8 * 1024, rotate_every=8) -> WearLevelledRegion:
    return WearLevelledRegion(size, CFG, rotate_every=rotate_every)


def test_data_survives_rotations():
    r = region(rotate_every=4)
    payload = {i * 64: bytes([i]) * 64 for i in range(16)}
    for addr, data in payload.items():
        r.write(addr, data)
        r.persist(addr, 64)
    # hammer one address to force many rotations
    for n in range(200):
        r.write(0, n.to_bytes(8, "little"))
        r.persist(0, 8)
    assert r.mapper.start > 0 or r.mapper.gap < r.mapper.n
    for addr, data in payload.items():
        expected = data if addr != 0 else (199).to_bytes(8, "little") + data[8:]
        assert r.read(addr, 64) == expected


def test_cross_line_access_translated_per_line():
    r = region()
    r.write(60, b"ABCDEFGH")  # spans lines 0 and 1
    assert r.read(60, 8) == b"ABCDEFGH"
    for _ in range(64):  # rotate a few times
        r.write(512, b"x" * 8)
    assert r.read(60, 8) == b"ABCDEFGH"


def test_alloc_bounded_by_logical_capacity():
    r = region(size=1024)
    r.alloc(1024)
    with pytest.raises(MemoryError):
        r.alloc(64)


def test_registers_survive_crash():
    r = region(rotate_every=2)
    r.write(0, b"persists")
    r.persist(0, 8)
    for _ in range(40):
        r.write(128, b"churnchurn"[:8])
        r.persist(128, 8)
    start, gap = r.mapper.start, r.mapper.gap
    r.crash()
    r.reload_registers()
    assert (r.mapper.start, r.mapper.gap) == (start, gap)
    assert r.read(0, 8) == b"persists"


def test_rotation_spreads_wear():
    """With rotation, a single hot line's writes spread across many
    physical lines; without, they pile onto one."""
    hot_writes = 600

    # 16 logical lines, rotation every 4 writes: the gap sweeps the full
    # device every ~68 writes, so the hot line is re-homed ~8 times
    flat = WearLevelledRegion(1024, CFG, rotate_every=4)
    for n in range(hot_writes):
        flat.write(0, n.to_bytes(8, "little"))
        flat.persist(0, 8)
    flat_report = flat.wear.report()

    from repro.nvm.memory import NVMRegion

    piled = NVMRegion(1024, CFG)
    for n in range(hot_writes):
        piled.write(0, n.to_bytes(8, "little"))
        piled.persist(0, 8)
    piled_report = piled.wear.report()

    assert flat_report.max_line_writes < 0.6 * piled_report.max_line_writes
    assert flat_report.lines_touched > piled_report.lines_touched


def test_group_hash_table_runs_on_wear_levelled_region():
    """The integration the paper's Section 2.1 promises: group hashing
    composes with device-level wear leveling unchanged."""
    r = WearLevelledRegion(1 << 20, CFG, rotate_every=64)
    table = GroupHashTable(r, 512, group_size=32)
    items = random_items(150, seed=1)
    accepted = [(k, v) for k, v in items if table.insert(k, v)]
    assert r.mapper.start > 0 or r.mapper.gap < r.mapper.n  # rotations happened
    for k, v in accepted:
        assert table.query(k) == v
    for k, _ in accepted[::2]:
        assert table.delete(k)
    assert table.check_count()
    # crash + recover still works through the mapping
    r.crash()
    r.reload_registers()
    table.reattach()
    table.recover()
    assert table.check_count()
    remaining = dict(accepted[1::2])
    assert dict(table.items()) == remaining


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 1016), st.binary(min_size=1, max_size=16)),
        min_size=1,
        max_size=40,
    ),
    rotate_every=st.integers(1, 16),
)
def test_reads_match_model_under_rotation(ops, rotate_every):
    """Property: whatever the rotation cadence, reads through the mapping
    always return the latest logical write."""
    r = WearLevelledRegion(1024, CFG, rotate_every=rotate_every)
    shadow = bytearray(1024)
    for addr, data in ops:
        data = data[: 1024 - addr]
        r.write(addr, data)
        shadow[addr : addr + len(data)] = data
    assert r.read(0, 1024) == bytes(shadow)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n_pre=st.integers(5, 60),
    at_event=st.integers(1, 12),
    sched=st.integers(0, 2**16),
    rotate_every=st.integers(2, 12),
)
def test_crash_during_rotation_is_safe(n_pre, at_event, sched, rotate_every):
    """Adversarial property: a crash at ANY event — including inside a
    gap-rotation's copy — recovers to a consistent group hash table with
    all committed items intact. This is the crash-safety argument of
    start-gap (the gap target is unreachable until the registers flip)
    composed with group hashing's recovery."""
    from repro.nvm import SimulatedPowerFailure, random_schedule

    r = WearLevelledRegion(1 << 19, CFG, rotate_every=rotate_every)
    table = GroupHashTable(r, 256, group_size=16)
    committed = {}
    for k, v in random_items(n_pre, seed=3):
        if table.insert(k, v):
            committed[k] = v
    extra_key, extra_value = random_items(n_pre + 1, seed=3)[-1]
    r.arm_crash(at_event)
    finished = False
    try:
        finished = table.insert(extra_key, extra_value)
        r.disarm_crash()
    except SimulatedPowerFailure:
        pass
    r.crash(random_schedule(sched))
    r.reload_registers()
    table.reattach()
    table.recover()
    state = dict(table.items())
    for k, v in committed.items():
        assert state.get(k) == v
    assert state.get(extra_key) in (None, extra_value)
    if finished:
        assert state[extra_key] == extra_value
    assert table.check_count()
